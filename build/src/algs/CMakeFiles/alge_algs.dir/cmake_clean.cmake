file(REMOVE_RECURSE
  "CMakeFiles/alge_algs.dir/fft/fft.cpp.o"
  "CMakeFiles/alge_algs.dir/fft/fft.cpp.o.d"
  "CMakeFiles/alge_algs.dir/harness.cpp.o"
  "CMakeFiles/alge_algs.dir/harness.cpp.o.d"
  "CMakeFiles/alge_algs.dir/lu/distributed.cpp.o"
  "CMakeFiles/alge_algs.dir/lu/distributed.cpp.o.d"
  "CMakeFiles/alge_algs.dir/lu/local.cpp.o"
  "CMakeFiles/alge_algs.dir/lu/local.cpp.o.d"
  "CMakeFiles/alge_algs.dir/matmul/distributed.cpp.o"
  "CMakeFiles/alge_algs.dir/matmul/distributed.cpp.o.d"
  "CMakeFiles/alge_algs.dir/matmul/local.cpp.o"
  "CMakeFiles/alge_algs.dir/matmul/local.cpp.o.d"
  "CMakeFiles/alge_algs.dir/nbody/nbody.cpp.o"
  "CMakeFiles/alge_algs.dir/nbody/nbody.cpp.o.d"
  "CMakeFiles/alge_algs.dir/qr/tsqr.cpp.o"
  "CMakeFiles/alge_algs.dir/qr/tsqr.cpp.o.d"
  "CMakeFiles/alge_algs.dir/strassen/caps.cpp.o"
  "CMakeFiles/alge_algs.dir/strassen/caps.cpp.o.d"
  "CMakeFiles/alge_algs.dir/strassen/layout.cpp.o"
  "CMakeFiles/alge_algs.dir/strassen/layout.cpp.o.d"
  "CMakeFiles/alge_algs.dir/strassen/local.cpp.o"
  "CMakeFiles/alge_algs.dir/strassen/local.cpp.o.d"
  "libalge_algs.a"
  "libalge_algs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_algs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
