# Empty dependencies file for alge_algs.
# This may be replaced when dependencies are built.
