
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algs/fft/fft.cpp" "src/algs/CMakeFiles/alge_algs.dir/fft/fft.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/fft/fft.cpp.o.d"
  "/root/repo/src/algs/harness.cpp" "src/algs/CMakeFiles/alge_algs.dir/harness.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/harness.cpp.o.d"
  "/root/repo/src/algs/lu/distributed.cpp" "src/algs/CMakeFiles/alge_algs.dir/lu/distributed.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/lu/distributed.cpp.o.d"
  "/root/repo/src/algs/lu/local.cpp" "src/algs/CMakeFiles/alge_algs.dir/lu/local.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/lu/local.cpp.o.d"
  "/root/repo/src/algs/matmul/distributed.cpp" "src/algs/CMakeFiles/alge_algs.dir/matmul/distributed.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/matmul/distributed.cpp.o.d"
  "/root/repo/src/algs/matmul/local.cpp" "src/algs/CMakeFiles/alge_algs.dir/matmul/local.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/matmul/local.cpp.o.d"
  "/root/repo/src/algs/nbody/nbody.cpp" "src/algs/CMakeFiles/alge_algs.dir/nbody/nbody.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/nbody/nbody.cpp.o.d"
  "/root/repo/src/algs/qr/tsqr.cpp" "src/algs/CMakeFiles/alge_algs.dir/qr/tsqr.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/qr/tsqr.cpp.o.d"
  "/root/repo/src/algs/strassen/caps.cpp" "src/algs/CMakeFiles/alge_algs.dir/strassen/caps.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/strassen/caps.cpp.o.d"
  "/root/repo/src/algs/strassen/layout.cpp" "src/algs/CMakeFiles/alge_algs.dir/strassen/layout.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/strassen/layout.cpp.o.d"
  "/root/repo/src/algs/strassen/local.cpp" "src/algs/CMakeFiles/alge_algs.dir/strassen/local.cpp.o" "gcc" "src/algs/CMakeFiles/alge_algs.dir/strassen/local.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/alge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/alge_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/alge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alge_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/alge_fiber.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
