file(REMOVE_RECURSE
  "libalge_algs.a"
)
