file(REMOVE_RECURSE
  "libalge_machines.a"
)
