file(REMOVE_RECURSE
  "CMakeFiles/alge_machines.dir/db.cpp.o"
  "CMakeFiles/alge_machines.dir/db.cpp.o.d"
  "libalge_machines.a"
  "libalge_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
