# Empty compiler generated dependencies file for alge_machines.
# This may be replaced when dependencies are built.
