file(REMOVE_RECURSE
  "libalge_core.a"
)
