# Empty compiler generated dependencies file for alge_core.
# This may be replaced when dependencies are built.
