file(REMOVE_RECURSE
  "CMakeFiles/alge_core.dir/algmodel.cpp.o"
  "CMakeFiles/alge_core.dir/algmodel.cpp.o.d"
  "CMakeFiles/alge_core.dir/bounds.cpp.o"
  "CMakeFiles/alge_core.dir/bounds.cpp.o.d"
  "CMakeFiles/alge_core.dir/closed_forms.cpp.o"
  "CMakeFiles/alge_core.dir/closed_forms.cpp.o.d"
  "CMakeFiles/alge_core.dir/codesign.cpp.o"
  "CMakeFiles/alge_core.dir/codesign.cpp.o.d"
  "CMakeFiles/alge_core.dir/costs.cpp.o"
  "CMakeFiles/alge_core.dir/costs.cpp.o.d"
  "CMakeFiles/alge_core.dir/hetero.cpp.o"
  "CMakeFiles/alge_core.dir/hetero.cpp.o.d"
  "CMakeFiles/alge_core.dir/nbody_opt.cpp.o"
  "CMakeFiles/alge_core.dir/nbody_opt.cpp.o.d"
  "CMakeFiles/alge_core.dir/opt.cpp.o"
  "CMakeFiles/alge_core.dir/opt.cpp.o.d"
  "CMakeFiles/alge_core.dir/params.cpp.o"
  "CMakeFiles/alge_core.dir/params.cpp.o.d"
  "CMakeFiles/alge_core.dir/scaling.cpp.o"
  "CMakeFiles/alge_core.dir/scaling.cpp.o.d"
  "CMakeFiles/alge_core.dir/twolevel.cpp.o"
  "CMakeFiles/alge_core.dir/twolevel.cpp.o.d"
  "libalge_core.a"
  "libalge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
