
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algmodel.cpp" "src/core/CMakeFiles/alge_core.dir/algmodel.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/algmodel.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/alge_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/closed_forms.cpp" "src/core/CMakeFiles/alge_core.dir/closed_forms.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/closed_forms.cpp.o.d"
  "/root/repo/src/core/codesign.cpp" "src/core/CMakeFiles/alge_core.dir/codesign.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/codesign.cpp.o.d"
  "/root/repo/src/core/costs.cpp" "src/core/CMakeFiles/alge_core.dir/costs.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/costs.cpp.o.d"
  "/root/repo/src/core/hetero.cpp" "src/core/CMakeFiles/alge_core.dir/hetero.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/hetero.cpp.o.d"
  "/root/repo/src/core/nbody_opt.cpp" "src/core/CMakeFiles/alge_core.dir/nbody_opt.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/nbody_opt.cpp.o.d"
  "/root/repo/src/core/opt.cpp" "src/core/CMakeFiles/alge_core.dir/opt.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/opt.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/alge_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/params.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/core/CMakeFiles/alge_core.dir/scaling.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/scaling.cpp.o.d"
  "/root/repo/src/core/twolevel.cpp" "src/core/CMakeFiles/alge_core.dir/twolevel.cpp.o" "gcc" "src/core/CMakeFiles/alge_core.dir/twolevel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
