# Empty compiler generated dependencies file for alge_fiber.
# This may be replaced when dependencies are built.
