file(REMOVE_RECURSE
  "CMakeFiles/alge_fiber.dir/fiber.cpp.o"
  "CMakeFiles/alge_fiber.dir/fiber.cpp.o.d"
  "libalge_fiber.a"
  "libalge_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
