file(REMOVE_RECURSE
  "libalge_fiber.a"
)
