file(REMOVE_RECURSE
  "CMakeFiles/alge_topo.dir/grid.cpp.o"
  "CMakeFiles/alge_topo.dir/grid.cpp.o.d"
  "libalge_topo.a"
  "libalge_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
