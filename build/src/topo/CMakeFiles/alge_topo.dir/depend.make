# Empty dependencies file for alge_topo.
# This may be replaced when dependencies are built.
