file(REMOVE_RECURSE
  "libalge_topo.a"
)
