file(REMOVE_RECURSE
  "libalge_sim.a"
)
