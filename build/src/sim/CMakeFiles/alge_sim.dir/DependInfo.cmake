
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/collectives.cpp" "src/sim/CMakeFiles/alge_sim.dir/collectives.cpp.o" "gcc" "src/sim/CMakeFiles/alge_sim.dir/collectives.cpp.o.d"
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/alge_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/alge_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/group.cpp" "src/sim/CMakeFiles/alge_sim.dir/group.cpp.o" "gcc" "src/sim/CMakeFiles/alge_sim.dir/group.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/alge_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/alge_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/alge_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/alge_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/alge_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/alge_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fiber/CMakeFiles/alge_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/alge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
