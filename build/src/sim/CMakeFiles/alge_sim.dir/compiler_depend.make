# Empty compiler generated dependencies file for alge_sim.
# This may be replaced when dependencies are built.
