file(REMOVE_RECURSE
  "CMakeFiles/alge_sim.dir/collectives.cpp.o"
  "CMakeFiles/alge_sim.dir/collectives.cpp.o.d"
  "CMakeFiles/alge_sim.dir/comm.cpp.o"
  "CMakeFiles/alge_sim.dir/comm.cpp.o.d"
  "CMakeFiles/alge_sim.dir/group.cpp.o"
  "CMakeFiles/alge_sim.dir/group.cpp.o.d"
  "CMakeFiles/alge_sim.dir/machine.cpp.o"
  "CMakeFiles/alge_sim.dir/machine.cpp.o.d"
  "CMakeFiles/alge_sim.dir/network.cpp.o"
  "CMakeFiles/alge_sim.dir/network.cpp.o.d"
  "CMakeFiles/alge_sim.dir/trace.cpp.o"
  "CMakeFiles/alge_sim.dir/trace.cpp.o.d"
  "libalge_sim.a"
  "libalge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
