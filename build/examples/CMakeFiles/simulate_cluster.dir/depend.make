# Empty dependencies file for simulate_cluster.
# This may be replaced when dependencies are built.
