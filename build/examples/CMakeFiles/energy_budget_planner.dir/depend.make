# Empty dependencies file for energy_budget_planner.
# This may be replaced when dependencies are built.
