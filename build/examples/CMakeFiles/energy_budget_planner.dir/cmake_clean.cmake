file(REMOVE_RECURSE
  "CMakeFiles/energy_budget_planner.dir/energy_budget_planner.cpp.o"
  "CMakeFiles/energy_budget_planner.dir/energy_budget_planner.cpp.o.d"
  "energy_budget_planner"
  "energy_budget_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_budget_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
