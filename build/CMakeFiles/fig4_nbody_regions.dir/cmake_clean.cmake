file(REMOVE_RECURSE
  "CMakeFiles/fig4_nbody_regions.dir/bench/fig4_nbody_regions.cpp.o"
  "CMakeFiles/fig4_nbody_regions.dir/bench/fig4_nbody_regions.cpp.o.d"
  "bench/fig4_nbody_regions"
  "bench/fig4_nbody_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_nbody_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
