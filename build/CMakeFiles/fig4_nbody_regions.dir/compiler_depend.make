# Empty compiler generated dependencies file for fig4_nbody_regions.
# This may be replaced when dependencies are built.
