# Empty dependencies file for extension_tsqr.
# This may be replaced when dependencies are built.
