file(REMOVE_RECURSE
  "CMakeFiles/extension_tsqr.dir/bench/extension_tsqr.cpp.o"
  "CMakeFiles/extension_tsqr.dir/bench/extension_tsqr.cpp.o.d"
  "bench/extension_tsqr"
  "bench/extension_tsqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
