# Empty compiler generated dependencies file for ablation_strassen_schedule.
# This may be replaced when dependencies are built.
