file(REMOVE_RECURSE
  "CMakeFiles/ablation_strassen_schedule.dir/bench/ablation_strassen_schedule.cpp.o"
  "CMakeFiles/ablation_strassen_schedule.dir/bench/ablation_strassen_schedule.cpp.o.d"
  "bench/ablation_strassen_schedule"
  "bench/ablation_strassen_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strassen_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
