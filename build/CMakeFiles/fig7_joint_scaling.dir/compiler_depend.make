# Empty compiler generated dependencies file for fig7_joint_scaling.
# This may be replaced when dependencies are built.
