# Empty dependencies file for ablation_energy_ledger.
# This may be replaced when dependencies are built.
