file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_ledger.dir/bench/ablation_energy_ledger.cpp.o"
  "CMakeFiles/ablation_energy_ledger.dir/bench/ablation_energy_ledger.cpp.o.d"
  "bench/ablation_energy_ledger"
  "bench/ablation_energy_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
