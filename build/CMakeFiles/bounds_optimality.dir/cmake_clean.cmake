file(REMOVE_RECURSE
  "CMakeFiles/bounds_optimality.dir/bench/bounds_optimality.cpp.o"
  "CMakeFiles/bounds_optimality.dir/bench/bounds_optimality.cpp.o.d"
  "bench/bounds_optimality"
  "bench/bounds_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
