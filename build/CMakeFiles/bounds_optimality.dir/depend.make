# Empty dependencies file for bounds_optimality.
# This may be replaced when dependencies are built.
