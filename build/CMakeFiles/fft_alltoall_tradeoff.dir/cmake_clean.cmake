file(REMOVE_RECURSE
  "CMakeFiles/fft_alltoall_tradeoff.dir/bench/fft_alltoall_tradeoff.cpp.o"
  "CMakeFiles/fft_alltoall_tradeoff.dir/bench/fft_alltoall_tradeoff.cpp.o.d"
  "bench/fft_alltoall_tradeoff"
  "bench/fft_alltoall_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_alltoall_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
