# Empty dependencies file for fft_alltoall_tradeoff.
# This may be replaced when dependencies are built.
