# Empty dependencies file for table2_processors.
# This may be replaced when dependencies are built.
