file(REMOVE_RECURSE
  "CMakeFiles/table2_processors.dir/bench/table2_processors.cpp.o"
  "CMakeFiles/table2_processors.dir/bench/table2_processors.cpp.o.d"
  "bench/table2_processors"
  "bench/table2_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
