# Empty dependencies file for twolevel_numa.
# This may be replaced when dependencies are built.
