file(REMOVE_RECURSE
  "CMakeFiles/twolevel_numa.dir/bench/twolevel_numa.cpp.o"
  "CMakeFiles/twolevel_numa.dir/bench/twolevel_numa.cpp.o.d"
  "bench/twolevel_numa"
  "bench/twolevel_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twolevel_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
