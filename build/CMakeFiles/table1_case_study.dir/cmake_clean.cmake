file(REMOVE_RECURSE
  "CMakeFiles/table1_case_study.dir/bench/table1_case_study.cpp.o"
  "CMakeFiles/table1_case_study.dir/bench/table1_case_study.cpp.o.d"
  "bench/table1_case_study"
  "bench/table1_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
