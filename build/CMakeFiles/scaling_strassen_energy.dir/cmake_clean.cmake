file(REMOVE_RECURSE
  "CMakeFiles/scaling_strassen_energy.dir/bench/scaling_strassen_energy.cpp.o"
  "CMakeFiles/scaling_strassen_energy.dir/bench/scaling_strassen_energy.cpp.o.d"
  "bench/scaling_strassen_energy"
  "bench/scaling_strassen_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_strassen_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
