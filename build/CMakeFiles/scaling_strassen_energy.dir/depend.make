# Empty dependencies file for scaling_strassen_energy.
# This may be replaced when dependencies are built.
