file(REMOVE_RECURSE
  "CMakeFiles/scaling_nbody_energy.dir/bench/scaling_nbody_energy.cpp.o"
  "CMakeFiles/scaling_nbody_energy.dir/bench/scaling_nbody_energy.cpp.o.d"
  "bench/scaling_nbody_energy"
  "bench/scaling_nbody_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_nbody_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
