# Empty compiler generated dependencies file for scaling_nbody_energy.
# This may be replaced when dependencies are built.
