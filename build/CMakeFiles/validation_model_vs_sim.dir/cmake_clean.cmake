file(REMOVE_RECURSE
  "CMakeFiles/validation_model_vs_sim.dir/bench/validation_model_vs_sim.cpp.o"
  "CMakeFiles/validation_model_vs_sim.dir/bench/validation_model_vs_sim.cpp.o.d"
  "bench/validation_model_vs_sim"
  "bench/validation_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
