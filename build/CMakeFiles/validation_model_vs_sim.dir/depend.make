# Empty dependencies file for validation_model_vs_sim.
# This may be replaced when dependencies are built.
