file(REMOVE_RECURSE
  "CMakeFiles/ablation_msg_cap.dir/bench/ablation_msg_cap.cpp.o"
  "CMakeFiles/ablation_msg_cap.dir/bench/ablation_msg_cap.cpp.o.d"
  "bench/ablation_msg_cap"
  "bench/ablation_msg_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_msg_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
