# Empty dependencies file for ablation_msg_cap.
# This may be replaced when dependencies are built.
