file(REMOVE_RECURSE
  "CMakeFiles/fig3_strong_scaling_limits.dir/bench/fig3_strong_scaling_limits.cpp.o"
  "CMakeFiles/fig3_strong_scaling_limits.dir/bench/fig3_strong_scaling_limits.cpp.o.d"
  "bench/fig3_strong_scaling_limits"
  "bench/fig3_strong_scaling_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_strong_scaling_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
