file(REMOVE_RECURSE
  "CMakeFiles/ablation_2d_baselines.dir/bench/ablation_2d_baselines.cpp.o"
  "CMakeFiles/ablation_2d_baselines.dir/bench/ablation_2d_baselines.cpp.o.d"
  "bench/ablation_2d_baselines"
  "bench/ablation_2d_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_2d_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
