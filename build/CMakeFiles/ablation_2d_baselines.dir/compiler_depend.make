# Empty compiler generated dependencies file for ablation_2d_baselines.
# This may be replaced when dependencies are built.
