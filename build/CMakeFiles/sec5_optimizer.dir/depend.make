# Empty dependencies file for sec5_optimizer.
# This may be replaced when dependencies are built.
