file(REMOVE_RECURSE
  "CMakeFiles/sec5_optimizer.dir/bench/sec5_optimizer.cpp.o"
  "CMakeFiles/sec5_optimizer.dir/bench/sec5_optimizer.cpp.o.d"
  "bench/sec5_optimizer"
  "bench/sec5_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
