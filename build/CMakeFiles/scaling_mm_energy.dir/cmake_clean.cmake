file(REMOVE_RECURSE
  "CMakeFiles/scaling_mm_energy.dir/bench/scaling_mm_energy.cpp.o"
  "CMakeFiles/scaling_mm_energy.dir/bench/scaling_mm_energy.cpp.o.d"
  "bench/scaling_mm_energy"
  "bench/scaling_mm_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_mm_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
