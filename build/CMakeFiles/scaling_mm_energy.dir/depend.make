# Empty dependencies file for scaling_mm_energy.
# This may be replaced when dependencies are built.
