file(REMOVE_RECURSE
  "CMakeFiles/fig6_param_scaling.dir/bench/fig6_param_scaling.cpp.o"
  "CMakeFiles/fig6_param_scaling.dir/bench/fig6_param_scaling.cpp.o.d"
  "bench/fig6_param_scaling"
  "bench/fig6_param_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_param_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
