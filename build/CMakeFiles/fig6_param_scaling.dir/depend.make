# Empty dependencies file for fig6_param_scaling.
# This may be replaced when dependencies are built.
