# Empty compiler generated dependencies file for seq_cache_locality.
# This may be replaced when dependencies are built.
