file(REMOVE_RECURSE
  "CMakeFiles/seq_cache_locality.dir/bench/seq_cache_locality.cpp.o"
  "CMakeFiles/seq_cache_locality.dir/bench/seq_cache_locality.cpp.o.d"
  "bench/seq_cache_locality"
  "bench/seq_cache_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_cache_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
