# Empty compiler generated dependencies file for scaling_lu_latency.
# This may be replaced when dependencies are built.
