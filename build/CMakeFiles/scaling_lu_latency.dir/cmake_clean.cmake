file(REMOVE_RECURSE
  "CMakeFiles/scaling_lu_latency.dir/bench/scaling_lu_latency.cpp.o"
  "CMakeFiles/scaling_lu_latency.dir/bench/scaling_lu_latency.cpp.o.d"
  "bench/scaling_lu_latency"
  "bench/scaling_lu_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_lu_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
