file(REMOVE_RECURSE
  "CMakeFiles/extension_hetero.dir/bench/extension_hetero.cpp.o"
  "CMakeFiles/extension_hetero.dir/bench/extension_hetero.cpp.o.d"
  "bench/extension_hetero"
  "bench/extension_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
