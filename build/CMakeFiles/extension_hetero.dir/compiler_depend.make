# Empty compiler generated dependencies file for extension_hetero.
# This may be replaced when dependencies are built.
