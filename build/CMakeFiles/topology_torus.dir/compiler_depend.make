# Empty compiler generated dependencies file for topology_torus.
# This may be replaced when dependencies are built.
