file(REMOVE_RECURSE
  "CMakeFiles/topology_torus.dir/bench/topology_torus.cpp.o"
  "CMakeFiles/topology_torus.dir/bench/topology_torus.cpp.o.d"
  "bench/topology_torus"
  "bench/topology_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
