// Tests for src/navigator: Pareto/bounds property tests over the reported
// frontiers, bit-exact reproduction of the §V optimizer answers at the
// frontier endpoints, closed-form scaling-region cross-checks, and
// byte-identical report determinism across engine thread counts (the chaos
// re-score included) — the last one is what the TSan CI job re-runs.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/algmodel.hpp"
#include "core/opt.hpp"
#include "machines/db.hpp"
#include "navigator/navigator.hpp"
#include "support/common.hpp"

namespace alge {
namespace {

core::MachineParams case_study_no_mem() {
  core::MachineParams mp = machines::CaseStudyMachine{}.params();
  mp.mem_words = 0.0;  // the optimizer chooses M (bench/sec5_optimizer)
  return mp;
}

navigator::NavRequest analytic_request(const std::string& model,
                                       double n = 1e6) {
  navigator::NavRequest req;
  req.model = model;
  req.n = n;
  req.params = case_study_no_mem();
  req.p_samples = 16;
  req.m_samples = 8;
  return req;
}

/// Strict Pareto dominance on (T, E) as the property tests state it: at
/// least as good in both, strictly better in at least one.
bool dominates(double at, double ae, double bt, double be) {
  return at <= bt && ae <= be && (at < bt || ae < be);
}

// --- Pareto / bounds properties ------------------------------------------

TEST(NavigatorProperties, FrontierPointsAreUndominatedPerMsgCapGroup) {
  for (const char* model : {"nbody", "classical-mm", "strassen", "lu-2.5d",
                            "fft-tree"}) {
    const navigator::NavReport rep =
        navigator::navigate(analytic_request(model));
    ASSERT_FALSE(rep.model_frontier.empty()) << model;
    for (std::size_t i = 0; i < rep.model_frontier.size(); ++i) {
      for (std::size_t j = 0; j < rep.model_frontier.size(); ++j) {
        if (i == j) continue;
        const navigator::ModelPoint& a = rep.model_frontier[i];
        const navigator::ModelPoint& b = rep.model_frontier[j];
        // Different message caps are different machines; dominance is
        // only meaningful within one cap group.
        if (a.m != b.m) continue;
        EXPECT_FALSE(dominates(a.T, a.E, b.T, b.E))
            << model << ": p=" << a.p << " dominates p=" << b.p;
      }
    }
  }
}

TEST(NavigatorProperties, NoPointBeatsTheCommunicationLowerBound) {
  for (const char* model : {"nbody", "classical-mm", "strassen", "lu-2.5d"}) {
    navigator::NavRequest req = analytic_request(model);
    const navigator::NavReport rep = navigator::navigate(req);
    for (const navigator::ModelPoint& pt : rep.model_frontier) {
      const double bound = navigator::words_lower_bound(
          req.model, req.omega0, req.n, pt.p, pt.M);
      EXPECT_GE(pt.words, bound * (1.0 - 1e-9))
          << model << " p=" << pt.p << " M=" << pt.M;
      // The report's own recorded bound must be the same recomputation.
      EXPECT_EQ(pt.words_bound, bound) << model << " p=" << pt.p;
    }
  }
}

TEST(NavigatorProperties, ValidateAcceptsRealReportsAndRejectsTampering) {
  navigator::NavRequest req = analytic_request("nbody");
  navigator::NavReport rep = navigator::navigate(req);
  EXPECT_TRUE(navigator::validate(rep, req).ok);

  // A dominated interior point must be caught...
  navigator::NavReport bad = rep;
  navigator::ModelPoint pt = bad.model_frontier.front();
  pt.T += 1.0;
  pt.E += 1.0;
  bad.model_frontier.push_back(pt);
  EXPECT_FALSE(navigator::validate(bad, req).ok);

  // ...and so must a point that claims to beat the lower bound.
  navigator::NavReport cheat = rep;
  cheat.model_frontier.front().words =
      cheat.model_frontier.front().words_bound * 0.5;
  EXPECT_FALSE(navigator::validate(cheat, req).ok);

  // ...and a shifted scaling-region edge.
  navigator::NavReport shifted = rep;
  shifted.scaling_p_max *= 2.0;
  EXPECT_FALSE(navigator::validate(shifted, req).ok);
}

// --- §V bit-exact endpoint reproduction ----------------------------------

TEST(NavigatorSectionV, EndpointsEqualOptimizerAnswersBitExactly) {
  for (const char* name : {"nbody", "classical-mm", "strassen"}) {
    navigator::NavRequest req = analytic_request(name, 1e7);
    const navigator::NavReport rep = navigator::navigate(req);

    const std::unique_ptr<core::AlgModel> model =
        core::make_model(req.model, req.f, req.omega0);
    const core::Optimizer solver(*model, req.n, req.params);
    const core::RunPoint want_e = solver.minimize_energy(req.limits);
    const core::RunPoint want_t = solver.minimize_time(req.limits);

    // Bit-exact: the report carries the optimizer's doubles verbatim.
    EXPECT_EQ(rep.min_energy.p, want_e.p) << name;
    EXPECT_EQ(rep.min_energy.M, want_e.M) << name;
    EXPECT_EQ(rep.min_energy.T, want_e.T) << name;
    EXPECT_EQ(rep.min_energy.E, want_e.E) << name;
    EXPECT_EQ(rep.min_time.T, want_t.T) << name;
    EXPECT_EQ(rep.min_time.E, want_t.E) << name;

    // The frontier's true endpoints are the V-B/V-C corners: min_energy
    // itself ties toward fewest processors — the SLOW end of the flat-E
    // valley — so when E is bit-flat it is dominated by the corner with
    // the same E and less T. Both corners must appear bit-exactly (the
    // seeds carry the optimizer's doubles verbatim).
    const core::RunPoint corner_e =
        solver.min_time_given_energy(want_e.E, req.limits);
    const core::RunPoint corner_t =
        solver.min_energy_given_time(want_t.T, req.limits);
    bool has_corner_e = false;
    bool has_corner_t = false;
    double best_e = rep.model_frontier.front().E;
    double best_t = rep.model_frontier.front().T;
    for (const navigator::ModelPoint& pt : rep.model_frontier) {
      has_corner_e =
          has_corner_e || (pt.p == corner_e.p && pt.M == corner_e.M &&
                           pt.T == corner_e.T && pt.E == corner_e.E);
      has_corner_t =
          has_corner_t || (pt.p == corner_t.p && pt.M == corner_t.M &&
                           pt.T == corner_t.T && pt.E == corner_t.E);
      best_e = std::min(best_e, pt.E);
      best_t = std::min(best_t, pt.T);
    }
    EXPECT_TRUE(has_corner_e) << name;
    EXPECT_TRUE(has_corner_t) << name;
    // And nothing on the frontier beats the §V optima beyond FP noise (a
    // grid point may sit an ULP below; anything more is a real violation).
    EXPECT_GE(best_e, want_e.E * (1.0 - 1e-9)) << name;
    EXPECT_LE(best_e, want_e.E) << name;
    EXPECT_GE(best_t, corner_t.T * (1.0 - 1e-9)) << name;
    EXPECT_LE(best_t, corner_t.T) << name;
  }
}

TEST(NavigatorSectionV, ScalingRegionEdgesMatchClosedForms) {
  navigator::NavRequest req = analytic_request("nbody", 1e7);
  const navigator::NavReport rep = navigator::navigate(req);
  const std::unique_ptr<core::AlgModel> model =
      core::make_model(req.model, req.f, req.omega0);
  EXPECT_EQ(rep.scaling_M, rep.min_energy.M);
  EXPECT_EQ(rep.scaling_p_min, model->p_min(req.n, rep.scaling_M));
  EXPECT_EQ(rep.scaling_p_max, model->p_max(req.n, rep.scaling_M));
  // The perfect-strong-scaling region is non-degenerate on this machine.
  EXPECT_LT(rep.scaling_p_min, rep.scaling_p_max);
}

// --- simulate + chaos re-score -------------------------------------------

navigator::NavRequest sim_request() {
  navigator::NavRequest req = analytic_request("classical-mm", 1e5);
  req.simulate = true;
  req.limits.p_available = 256.0;
  req.sim_points = 4;
  return req;
}

TEST(NavigatorSim, MeasuredFrontierRespectsBoundsAndRescoresEveryPlan) {
  navigator::NavRequest req = sim_request();
  const navigator::NavReport rep = navigator::navigate(req);
  ASSERT_FALSE(rep.measured_frontier.empty());
  EXPECT_TRUE(navigator::validate(rep, req).ok);
  for (const navigator::SimPoint& sp : rep.measured_frontier) {
    if (sp.words_bound > 0.0 && sp.p >= 2) {
      EXPECT_GE(sp.words_per_rank, sp.words_bound * (1.0 - 1e-9))
          << sp.label;
    }
    ASSERT_EQ(sp.rescored.size(), req.fault_plans.size()) << sp.label;
    for (std::size_t j = 0; j < sp.rescored.size(); ++j) {
      EXPECT_EQ(sp.rescored[j].plan, req.fault_plans[j]);
      // Faults never make the simulated run cheaper or faster.
      EXPECT_GE(sp.rescored[j].makespan, sp.makespan * (1.0 - 1e-12))
          << sp.label;
      EXPECT_GE(sp.rescored[j].energy, sp.energy * (1.0 - 1e-12))
          << sp.label;
    }
  }
  EXPECT_GE(rep.robust_points, 1);
  EXPECT_GE(rep.fault_energy_inflation, 1.0);
}

// Byte-identical reports across engine thread counts, chaos re-score
// included. TSan re-runs exactly these (NavigatorDeterminism.*) to prove
// the parallel sweep and the re-score batches race-free.
TEST(NavigatorDeterminism, ReportBytesIdenticalAcrossThreadCounts) {
  navigator::NavRequest req = sim_request();
  req.threads = 1;
  const std::string one = navigator::navigate(req).to_json().dump();
  req.threads = 4;
  const std::string four = navigator::navigate(req).to_json().dump();
  EXPECT_EQ(one, four);
}

TEST(NavigatorDeterminism, RepeatedNavigateIsByteStable) {
  navigator::NavRequest req = sim_request();
  req.threads = 2;
  const std::string a = navigator::navigate(req).to_json().dump();
  const std::string b = navigator::navigate(req).to_json().dump();
  EXPECT_EQ(a, b);
}

// --- request validation ---------------------------------------------------

TEST(NavigatorRequests, BadRequestsThrow) {
  navigator::NavRequest req = analytic_request("no-such-model");
  EXPECT_THROW(navigator::navigate(req), invalid_argument_error);
  req = analytic_request("nbody");
  req.n = -1.0;
  EXPECT_THROW(navigator::navigate(req), invalid_argument_error);
  req = analytic_request("nbody");
  req.simulate = true;
  req.fault_plans = {"no-such-plan"};
  EXPECT_THROW(navigator::navigate(req), invalid_argument_error);
}

}  // namespace
}  // namespace alge
