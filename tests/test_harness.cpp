// The experiment harness is what the benches and examples trust; verify it
// end to end: results verified, counters populated, energy consistent with
// the counters, and determinism across calls.
#include <gtest/gtest.h>

#include "algs/harness.hpp"
#include "support/common.hpp"

namespace alge::algs::harness {
namespace {

core::MachineParams test_params() {
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;
  return mp;
}

void expect_sane(const RunResult& r, int want_p) {
  EXPECT_EQ(r.p, want_p);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.max_abs_error, 1e-8);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.totals.flops_total, 0.0);
  EXPECT_GT(r.energy.total(), 0.0);
  // Energy breakdown must be internally consistent.
  const auto& b = r.energy.breakdown;
  EXPECT_NEAR(b.total(),
              b.flops + b.words + b.messages + b.memory + b.leakage, 1e-9);
  EXPECT_DOUBLE_EQ(r.energy.makespan, r.makespan);
}

TEST(Harness, Mm25dVerifiedAndCounted) {
  const auto r = run_mm25d(16, 2, 2, test_params(), /*verify=*/true);
  expect_sane(r, 8);
  EXPECT_GT(r.words_per_proc(), 0.0);
}

TEST(Harness, SummaVerified) {
  const auto r = run_summa(16, 2, test_params(), true);
  expect_sane(r, 4);
}

TEST(Harness, CapsVerified) {
  CapsOptions opts;
  opts.local_cutoff = 4;
  const auto r = run_caps(14, 1, test_params(), opts, true);
  expect_sane(r, 7);
}

TEST(Harness, NBodyVerified) {
  const auto r = run_nbody(64, 8, 2, test_params(), true);
  expect_sane(r, 8);
}

TEST(Harness, LuBothVariantsVerified) {
  expect_sane(run_lu(16, 4, 2, 1, test_params(), true), 4);
  expect_sane(run_lu(16, 4, 2, 2, test_params(), true), 8);
}

TEST(Harness, FftBothKindsVerified) {
  expect_sane(run_fft(16, 16, 4, AllToAllKind::kDirect, test_params(), true),
              4);
  expect_sane(run_fft(16, 16, 4, AllToAllKind::kBruck, test_params(), true),
              4);
}

TEST(Harness, DeterministicAcrossCalls) {
  const auto a = run_mm25d(16, 2, 2, test_params(), false, /*seed=*/9);
  const auto b = run_mm25d(16, 2, 2, test_params(), false, /*seed=*/9);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.totals.words_total, b.totals.words_total);
  EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Harness, SeedChangesDataNotCosts) {
  // Different random inputs, identical communication structure.
  const auto a = run_mm25d(16, 2, 2, test_params(), false, 1);
  const auto b = run_mm25d(16, 2, 2, test_params(), false, 2);
  EXPECT_DOUBLE_EQ(a.totals.words_total, b.totals.words_total);
  EXPECT_DOUBLE_EQ(a.totals.msgs_total, b.totals.msgs_total);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Harness, UnverifiedRunSkipsReference) {
  const auto r = run_nbody(64, 8, 2, test_params(), /*verify=*/false);
  EXPECT_FALSE(r.verified);
  EXPECT_DOUBLE_EQ(r.max_abs_error, 0.0);
}

}  // namespace
}  // namespace alge::algs::harness
