#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/hetero.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/stats.hpp"

namespace alge::core {
namespace {

TEST(HeteroModel, HomogeneousBalanceEqualsEqualSplit) {
  std::vector<HeteroProc> classes(1);
  classes[0].gamma_t = 2.0;
  classes[0].count = 8;
  const auto bal = hetero_balance(classes, 800.0);
  const auto eq = hetero_equal_split(classes, 800.0);
  EXPECT_DOUBLE_EQ(bal.makespan, eq.makespan);
  EXPECT_DOUBLE_EQ(bal.flops_per_class[0], 100.0);
}

TEST(HeteroModel, AllClassesFinishTogether) {
  std::vector<HeteroProc> classes(3);
  classes[0].gamma_t = 1.0;
  classes[0].count = 2;
  classes[1].gamma_t = 4.0;
  classes[1].count = 3;
  classes[2].gamma_t = 0.5;
  classes[2].beta_t = 2.0;
  classes[2].mem_words = 16.0;
  classes[2].count = 1;
  const auto bal = hetero_balance(classes, 1e6);
  double assigned = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const double t =
        bal.flops_per_class[i] * classes[i].time_rate();
    EXPECT_LT(rel_diff(t, bal.makespan), 1e-12) << "class " << i;
    assigned += bal.flops_per_class[i] * classes[i].count;
  }
  EXPECT_LT(rel_diff(assigned, 1e6), 1e-12);
}

TEST(HeteroModel, BalancedBeatsEqualSplitOnMixedMachine) {
  // A GPU-ish fast class plus ARM-ish slow class (Table II's two poles).
  std::vector<HeteroProc> classes(2);
  classes[0].gamma_t = 1.0;  // fast
  classes[0].count = 2;
  classes[1].gamma_t = 10.0;  // slow
  classes[1].count = 6;
  const auto bal = hetero_balance(classes, 1e6);
  const auto eq = hetero_equal_split(classes, 1e6);
  EXPECT_LT(bal.makespan, eq.makespan);
  // Equal split is pinned to the slow class.
  EXPECT_LT(rel_diff(eq.makespan, 1e6 / 8.0 * 10.0), 1e-12);
  // Balanced assigns 10x the work to the 10x faster processors.
  EXPECT_LT(rel_diff(bal.flops_per_class[0] / bal.flops_per_class[1], 10.0),
            1e-12);
}

TEST(HeteroModel, CommunicationRateShiftsWork) {
  // Same flop speed, but one class has a slow link: it must get less work.
  std::vector<HeteroProc> classes(2);
  classes[0].gamma_t = 1.0;
  classes[0].count = 1;
  classes[1].gamma_t = 1.0;
  classes[1].beta_t = 3.0;
  classes[1].mem_words = 9.0;  // rate = 1 + 3/3 = 2
  classes[1].count = 1;
  const auto bal = hetero_balance(classes, 300.0);
  EXPECT_LT(rel_diff(bal.flops_per_class[0], 200.0), 1e-12);
  EXPECT_LT(rel_diff(bal.flops_per_class[1], 100.0), 1e-12);
}

TEST(HeteroModel, EnergyAccountsLeakageOverMakespan) {
  std::vector<HeteroProc> classes(1);
  classes[0].gamma_t = 1.0;
  classes[0].gamma_e = 2.0;
  classes[0].eps_e = 0.5;
  classes[0].count = 4;
  const auto bal = hetero_balance(classes, 400.0);
  // Each proc: 100 flops, T = 100; E = 4*(100*2 + 0.5*100).
  EXPECT_DOUBLE_EQ(bal.energy, 4.0 * (200.0 + 50.0));
}

TEST(HeteroModel, RejectsBadInput) {
  EXPECT_THROW(hetero_balance({}, 1.0), invalid_argument_error);
  std::vector<HeteroProc> classes(1);
  classes[0].count = 0;
  EXPECT_THROW(hetero_balance(classes, 1.0), invalid_argument_error);
}

TEST(HeteroSim, SpeedMultipliersChangeComputeTime) {
  sim::MachineConfig cfg;
  cfg.p = 2;
  cfg.params = MachineParams::unit();
  cfg.speed = {1.0, 4.0};
  sim::Machine m(cfg);
  m.run([&](sim::Comm& c) { c.compute(100.0); });
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 100.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 25.0);
  // Flop counts (and hence flop energy) are speed-independent.
  EXPECT_DOUBLE_EQ(m.rank_counters(1).flops, 100.0);
}

TEST(HeteroSim, BalancedPartitionEqualizesMeasuredClocks) {
  // Close the loop: feed the model's partition into the simulator and
  // check the ranks really finish together.
  sim::MachineConfig cfg;
  cfg.p = 3;
  cfg.params = MachineParams::unit();
  cfg.speed = {1.0, 2.0, 5.0};
  std::vector<HeteroProc> classes(3);
  for (int i = 0; i < 3; ++i) {
    classes[static_cast<std::size_t>(i)].gamma_t =
        1.0 / cfg.speed[static_cast<std::size_t>(i)];
    classes[static_cast<std::size_t>(i)].count = 1;
  }
  const auto bal = hetero_balance(classes, 1000.0);
  sim::Machine m(cfg);
  m.run([&](sim::Comm& c) {
    c.compute(bal.flops_per_class[static_cast<std::size_t>(c.rank())]);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_LT(rel_diff(m.rank_counters(r).clock, bal.makespan), 1e-12);
  }
}

TEST(HeteroSim, RejectsWrongSpeedVector) {
  sim::MachineConfig cfg;
  cfg.p = 2;
  cfg.params = MachineParams::unit();
  cfg.speed = {1.0};
  EXPECT_THROW(sim::Machine m(cfg), invalid_argument_error);
  cfg.speed = {1.0, 0.0};
  EXPECT_THROW(sim::Machine m2(cfg), invalid_argument_error);
}

}  // namespace
}  // namespace alge::core
