#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/flat_map.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace alge {
namespace {

TEST(StrFmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(strfmt(""), "");
}

TEST(Check, ThrowsInternalErrorWithMessage) {
  try {
    ALGE_CHECK(1 == 2, "math broke: %d", 42);
    FAIL() << "expected throw";
  } catch (const internal_error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke: 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_THROW(ALGE_REQUIRE(false, "bad input"), invalid_argument_error);
  EXPECT_NO_THROW(ALGE_REQUIRE(true));
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NextBelowCoversRangeUniformly) {
  Rng r(11);
  std::vector<int> hits(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[r.next_below(10)];
  for (int h : hits) {
    EXPECT_GT(h, n / 10 - n / 50);
    EXPECT_LT(h, n / 10 + n / 50);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.next_below(0), invalid_argument_error);
}

TEST(Stats, BasicMoments) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EmptyAccumulatorThrows) {
  StatAccumulator s;
  EXPECT_THROW(s.mean(), invalid_argument_error);
  EXPECT_THROW(s.min(), invalid_argument_error);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 2.0), 0.5, 1e-15);
  EXPECT_NEAR(rel_diff(0.0, 0.0), 0.0, 1e-15);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("b").cell(22);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CsvEscapes) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("say \"hi\"");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RejectsOverfullRow) {
  Table t({"only"});
  t.row().cell("one");
  EXPECT_THROW(t.cell("two"), invalid_argument_error);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), invalid_argument_error);
}

TEST(Cli, ParsesFlagsBothStyles) {
  CliArgs cli;
  cli.add_flag("n", "10", "problem size");
  cli.add_flag("mode", "fast", "mode");
  const char* argv[] = {"prog", "--n=32", "--mode", "slow"};
  cli.parse(4, argv);
  EXPECT_EQ(cli.get_int("n"), 32);
  EXPECT_EQ(cli.get("mode"), "slow");
}

TEST(Cli, DefaultsApply) {
  CliArgs cli;
  cli.add_flag("x", "2.5", "");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 2.5);
}

TEST(Cli, RejectsUnknownFlag) {
  CliArgs cli;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, argv), invalid_argument_error);
}

TEST(Cli, IntList) {
  CliArgs cli;
  cli.add_flag("p", "1,2,4", "");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  const auto v = cli.get_int_list("p");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 4);
}

TEST(Cli, BoolParsing) {
  CliArgs cli;
  cli.add_flag("flag", "true", "");
  const char* argv[] = {"prog", "--flag=no"};
  cli.parse(2, argv);
  EXPECT_FALSE(cli.get_bool("flag"));
}

TEST(Cli, HelpRequested) {
  CliArgs cli;
  cli.add_flag("n", "1", "size");
  const char* argv[] = {"prog", "--help"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage("prog").find("size"), std::string::npos);
}

TEST(Json, BuildAndDumpIsCanonical) {
  json::Value o = json::Value::object();
  o.set("name", "alge").set("count", 3).set("ok", true).set("none", nullptr);
  json::Value arr = json::Value::array();
  arr.push_back(1).push_back(2.5).push_back("x");
  o.set("list", std::move(arr));
  EXPECT_EQ(o.dump(),
            "{\"name\":\"alge\",\"count\":3,\"ok\":true,\"none\":null,"
            "\"list\":[1,2.5,\"x\"]}");
}

TEST(Json, ParseRoundTripsDump) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":false}],\"s\":\"he\\\"llo\\n\",\"x\":-1.25e-3}";
  const json::Value v = json::parse(text);
  EXPECT_EQ(json::parse(v.dump()), v);
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("s").as_string(), "he\"llo\n");
  EXPECT_DOUBLE_EQ(v.at("x").as_double(), -1.25e-3);
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 1e18, 9007199254740992.0, -0.0,
                         3.141592653589793, 1.5625e-2}) {
    json::Value v(d);
    const double back = json::parse(v.dump()).as_double();
    EXPECT_EQ(back, d) << v.dump();
  }
  EXPECT_EQ(json::Value(48.0).dump(), "48");
  EXPECT_EQ(json::Value(-7).dump(), "-7");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(json::parse("{"), json::json_error);
  EXPECT_THROW(json::parse("[1,]"), json::json_error);
  EXPECT_THROW(json::parse("\"unterminated"), json::json_error);
  EXPECT_THROW(json::parse("12 34"), json::json_error);
  EXPECT_THROW(json::parse("{\"a\":nul}"), json::json_error);
  EXPECT_THROW(json::Value(1.0).at("k"), json::json_error);
  EXPECT_THROW(json::parse("[1]").as_object(), json::json_error);
}

TEST(Json, MissingKeyThrowsFindReturnsNull) {
  const json::Value v = json::parse("{\"a\":1}");
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW(v.at("b"), json::json_error);
  EXPECT_DOUBLE_EQ(v.at("a").as_double(), 1.0);
}


TEST(FlatU64Map, FindOrEmplaceInsertsOnce) {
  FlatU64Map<int> m;
  EXPECT_TRUE(m.empty());
  int& a = m.find_or_emplace(42, 7);
  EXPECT_EQ(a, 7);
  a = 9;
  EXPECT_EQ(m.find_or_emplace(42, 0), 9);  // existing value, init ignored
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(42), 9);
  EXPECT_EQ(m.find(43), nullptr);
}

TEST(FlatU64Map, GrowthRehashesAllEntries) {
  FlatU64Map<std::uint64_t> m;
  // Far past several doublings; keys packed like the mailbox's (src, tag).
  const std::uint64_t n = 3000;
  for (std::uint64_t k = 0; k < n; ++k) {
    m.find_or_emplace((k << 32) | (k & 3), k * k);
  }
  EXPECT_EQ(m.size(), static_cast<std::size_t>(n));
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t* v = m.find((k << 32) | (k & 3));
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, k * k);
  }
  EXPECT_EQ(m.find(std::uint64_t{n} << 32), nullptr);
}

TEST(FlatU64Map, ClearEmptiesButKeepsWorking) {
  FlatU64Map<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.find_or_emplace(k, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m.find_or_emplace(5, 77);
  EXPECT_EQ(*m.find(5), 77);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatU64Map, ForEachVisitsEveryEntry) {
  FlatU64Map<int> m;
  for (std::uint64_t k = 10; k < 20; ++k) {
    m.find_or_emplace(k, static_cast<int>(k));
  }
  std::size_t visited = 0;
  std::uint64_t key_sum = 0;
  int value_sum = 0;
  m.for_each([&](std::uint64_t k, int v) {
    ++visited;
    key_sum += k;
    value_sum += v;
  });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(key_sum, 145u);  // 10 + 11 + ... + 19
  EXPECT_EQ(value_sum, 145);
}

}  // namespace
}  // namespace alge
