// Unit tests for the transport layer's building blocks: chunk math, backend
// naming, self-send accounting, the runner report aggregation, and the
// engine's transport axis (spec serialization, executor registry,
// dispatch).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/job.hpp"
#include "engine/runner.hpp"
#include "sim/comm.hpp"
#include "support/common.hpp"
#include "transport/engine_backend.hpp"
#include "transport/programs.hpp"
#include "transport/run.hpp"
#include "transport/wire.hpp"

namespace alge::transport {
namespace {

TEST(ChunkMath, ChunksCoverTheMessageEvenly) {
  for (std::uint64_t words : {1ull, 7ull, 64ull, 100ull, 1023ull}) {
    for (std::uint32_t chunks : {1u, 2u, 3u, 7u, 15u}) {
      if (chunks > words) continue;
      std::uint64_t sum = 0;
      std::uint64_t prev = chunk_words_at(words, chunks, 0);
      for (std::uint32_t i = 0; i < chunks; ++i) {
        const std::uint64_t cw = chunk_words_at(words, chunks, i);
        sum += cw;
        // Leading chunks absorb the remainder: sizes are non-increasing and
        // differ by at most one word.
        EXPECT_LE(cw, prev);
        EXPECT_LE(prev - cw, 1u);
        prev = cw;
      }
      EXPECT_EQ(sum, words) << words << " words in " << chunks << " chunks";
    }
  }
}

TEST(BackendNames, RoundTrip) {
  for (Backend b : {Backend::kSim, Backend::kShm, Backend::kTcp}) {
    EXPECT_EQ(backend_from_string(to_string(b)), b);
  }
  EXPECT_THROW(backend_from_string("mpi"), invalid_argument_error);
}

TEST(RunOptionsValidation, RejectsEmptyWorldAndZeroTimeout) {
  RunOptions opts;
  opts.p = 0;
  const RankProgram noop = [](sim::Comm&, std::vector<double>&) {};
  EXPECT_THROW(run_sim(opts, noop), invalid_argument_error);
  opts.p = 1;
  opts.timeout_s = 0.0;
  EXPECT_THROW(run_sim(opts, noop), invalid_argument_error);
}

// Self-sends are free local copies: no model send costs, no message count,
// but the received words do land in the recv ledger.
TEST(SelfSend, AccountingMatchesTheModelContract) {
  RunOptions opts;
  opts.p = 1;
  opts.params = core::MachineParams::unit();
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    std::vector<double> buf = {1.0, 2.0, 3.0};
    comm.send(0, sim::ConstPayload(buf));
    out.resize(3);
    comm.recv(0, sim::Payload(out));
  };
  const RunReport report = run_sim(opts, program);
  const RankReport& r = report.ranks[0];
  EXPECT_EQ(r.output, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.model.msgs_sent, 0.0);
  EXPECT_EQ(r.model.words_sent, 0.0);
  EXPECT_EQ(r.model.msgs_recv, 0.0);   // msg_count 0 for self-deliveries
  EXPECT_EQ(r.model.words_recv, 3.0);  // but the words are real
  EXPECT_EQ(r.model.clock, 0.0);       // and no time passes
}

TEST(RunReportMath, TotalsAndEnergyMatchTheMachine) {
  const AlgProgram ap = make_program(conformance_spec("summa"));
  RunOptions opts;
  opts.p = ap.p;
  opts.params = core::MachineParams::unit();
  const RunReport report = run_sim(opts, ap.program);

  sim::MachineConfig cfg;
  cfg.p = ap.p;
  cfg.params = opts.params;
  sim::Machine machine(cfg);
  machine.run([&](sim::Comm& comm) {
    std::vector<double> out;
    ap.program(comm, out);
  });
  EXPECT_EQ(report.makespan(), machine.makespan());
  EXPECT_TRUE(report.totals() == machine.totals());
  const sim::SimEnergy a = report.energy(opts.params);
  const sim::SimEnergy b = machine.energy();
  EXPECT_EQ(a.breakdown.total(), b.breakdown.total());
}

TEST(Programs, NamesCoverAllSevenAlgorithms) {
  const std::vector<std::string>& names = program_names();
  ASSERT_EQ(names.size(), 7u);
  for (const std::string& name : names) {
    const AlgProgram ap = make_program(conformance_spec(name));
    EXPECT_GE(ap.p, 1) << name;
    EXPECT_LE(ap.p, 8) << name;  // the conformance matrix stays small
    EXPECT_TRUE(ap.program != nullptr) << name;
  }
  ProgramSpec unknown;
  unknown.alg = "qrjob";
  EXPECT_THROW(make_program(unknown), invalid_argument_error);
}

// --- engine transport axis ---

engine::ExperimentSpec small_mm_spec() {
  engine::ExperimentSpec spec;
  spec.alg = engine::Alg::kMm25d;
  spec.params = core::MachineParams::unit();
  spec.n = 8;
  spec.q = 2;
  spec.c = 1;
  return spec;
}

TEST(EngineAxis, TransportFieldIsDefaultInertInTheCacheKey) {
  const engine::ExperimentSpec plain = small_mm_spec();
  engine::ExperimentSpec simmed = small_mm_spec();
  simmed.transport = "sim";
  // Unset stays absent from the canonical encoding (cache keys unchanged);
  // set is serialized and round-trips.
  EXPECT_EQ(plain.canonical_json().find("transport"), std::string::npos);
  EXPECT_NE(simmed.canonical_json().find("transport"), std::string::npos);
  const engine::ExperimentSpec back =
      engine::ExperimentSpec::from_json(simmed.to_json());
  EXPECT_EQ(back.transport, "sim");
  EXPECT_TRUE(back == simmed);
}

TEST(EngineAxis, SimTransportNameExecutesIdenticallyToUnset) {
  const engine::ExperimentResult plain = engine::execute(small_mm_spec());
  engine::ExperimentSpec spec = small_mm_spec();
  spec.transport = "sim";
  EXPECT_TRUE(engine::execute(spec) == plain);
}

TEST(EngineAxis, UnknownTransportIsAClearError) {
  engine::ExperimentSpec spec = small_mm_spec();
  spec.transport = "mpi";
  EXPECT_THROW(engine::execute(spec), invalid_argument_error);
}

TEST(EngineAxis, RegistryFindsWhatWasRegistered) {
  EXPECT_EQ(engine::find_backend_executor("never-registered"), nullptr);
  register_engine_backends();
  EXPECT_NE(engine::find_backend_executor("shm"), nullptr);
  EXPECT_NE(engine::find_backend_executor("tcp"), nullptr);
  const std::vector<std::string> names = engine::backend_executor_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "shm"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "tcp"), names.end());
}

TEST(EngineAxis, RealBackendRejectsSimulatorOnlyAxes) {
  register_engine_backends();
  engine::ExperimentSpec spec = small_mm_spec();
  spec.transport = "shm";
  spec.data_mode = sim::DataMode::kGhost;
  EXPECT_THROW(engine::execute(spec), invalid_argument_error);
  spec.data_mode = sim::DataMode::kFull;
  spec.chaos_seed = 17;
  EXPECT_THROW(engine::execute(spec), invalid_argument_error);
  spec.chaos_seed = 0;
  spec.verify = true;
  EXPECT_THROW(engine::execute(spec), invalid_argument_error);
}

// The real execution path reproduces the simulator's result: same model,
// same aggregation, so the makespan/totals/energy of a shm run equal the
// simulated ones for the same spec.
TEST(EngineAxis, ShmExecutionMatchesSimulatedResult) {
  register_engine_backends();
  const engine::ExperimentResult simmed = engine::execute(small_mm_spec());
  engine::ExperimentSpec spec = small_mm_spec();
  spec.transport = "shm";
  const engine::ExperimentResult real = engine::execute(spec);
  EXPECT_EQ(real.p, simmed.p);
  EXPECT_EQ(real.makespan, simmed.makespan);
  EXPECT_TRUE(real.totals == simmed.totals);
  EXPECT_EQ(real.energy.total(), simmed.energy.total());
}

}  // namespace
}  // namespace alge::transport
