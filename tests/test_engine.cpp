// Tests for the parallel experiment engine: thread pool semantics (bounded
// queue, exception capture, graceful vs discarding shutdown), spec/result
// JSON round-trips, content-addressed caching (memory + disk, corruption
// recovery), and the load-bearing property of the whole subsystem — a sweep
// produces bit-identical results whether it runs on 1 thread or 8.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/cache.hpp"
#include "engine/job.hpp"
#include "engine/pool.hpp"
#include "engine/runner.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

namespace alge::engine {
namespace {

// ---------------------------------------------------------------- pool ----

TEST(Pool, RunsManyTinyJobs) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4, 16);  // small queue: exercises submit backpressure
    for (int i = 0; i < 500; ++i) {
      pool.submit([&sum]() { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.drain();
    EXPECT_EQ(pool.jobs_run(), 500u);
  }
  EXPECT_EQ(sum.load(), 500);
}

TEST(Pool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto a = pool.submit([]() { return 21 * 2; });
  auto b = pool.submit([]() { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(Pool, CapturesJobExceptions) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([]() { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);  // the pool survives a throwing job
}

TEST(Pool, DrainRunsEverythingQueued) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran]() {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran.fetch_add(1);
    });
  }
  pool.drain();  // shutdown with jobs still queued: all must run
  EXPECT_EQ(ran.load(), 50);
}

TEST(Pool, DiscardDropsQueuedJobsAndBreaksTheirPromises) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  ThreadPool pool(1, 64);
  auto blocker = pool.submit([&]() {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ran.fetch_add(1);
  });
  // Make sure the blocker is in flight (not still queued) before queueing
  // the jobs that discard() is supposed to drop.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 8; ++i) {
    queued.push_back(pool.submit([&ran]() { ran.fetch_add(1); }));
  }
  // Let discard() clear the queue, then release the in-flight job so the
  // worker can exit and discard() can join.
  std::thread releaser([&release]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true);
  });
  const std::size_t dropped = pool.discard();
  releaser.join();
  EXPECT_EQ(dropped, 8u);
  EXPECT_EQ(ran.load(), 1);  // only the in-flight job ran
  EXPECT_NO_THROW(blocker.get());
  for (auto& f : queued) {
    EXPECT_THROW(f.get(), std::future_error);
  }
}

TEST(Pool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.drain();
  EXPECT_THROW(pool.submit([]() {}), invalid_argument_error);
}

TEST(Pool, RejectsBadConfig) {
  EXPECT_THROW(ThreadPool(0), invalid_argument_error);
  EXPECT_THROW(ThreadPool(1, 0), invalid_argument_error);
}

// ----------------------------------------------------------------- job ----

ExperimentSpec small_mm_spec() {
  ExperimentSpec s;
  s.alg = Alg::kMm25d;
  s.params = core::MachineParams::unit();
  s.n = 24;
  s.q = 2;
  s.c = 2;
  s.verify = true;
  return s;
}

TEST(Job, SpecJsonRoundTrip) {
  ExperimentSpec s = small_mm_spec();
  s.caps_schedule = "BD";
  s.caps_cutoff = 4;
  s.ring_replication = true;
  s.seed = 0xdeadbeefcafef00dULL;  // does not fit a double exactly
  s.params.beta_t = 1.5625e-2;
  const ExperimentSpec back = ExperimentSpec::from_json(
      json::parse(s.canonical_json()));
  EXPECT_EQ(back, s);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.canonical_json(), s.canonical_json());
}

TEST(Job, CanonicalJsonDistinguishesEveryField) {
  const ExperimentSpec base = small_mm_spec();
  ExperimentSpec other = base;
  other.seed = 2;
  EXPECT_NE(base.canonical_json(), other.canonical_json());
  other = base;
  other.params.gamma_e = 2.0;
  EXPECT_NE(base.canonical_json(), other.canonical_json());
  other = base;
  other.verify = false;
  EXPECT_NE(base.canonical_json(), other.canonical_json());
}

TEST(Job, ResultJsonRoundTripIsBitExact) {
  const ExperimentResult r = execute(small_mm_spec());
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.max_abs_error, 1e-9);
  EXPECT_GT(r.totals.flops_total, 0.0);
  const ExperimentResult back =
      ExperimentResult::from_json(json::parse(r.to_json().dump()));
  EXPECT_EQ(back, r);
}

TEST(Job, AlgNamesRoundTrip) {
  for (const Alg a :
       {Alg::kMm25d, Alg::kSumma, Alg::kCaps, Alg::kNBody, Alg::kLu,
        Alg::kFft, Alg::kCollBcast, Alg::kCollReduce, Alg::kCollAllgather,
        Alg::kCollA2aDirect, Alg::kCollA2aBruck}) {
    EXPECT_EQ(alg_from_string(to_string(a)), a);
  }
  EXPECT_THROW(alg_from_string("no_such_alg"), invalid_argument_error);
}

// --------------------------------------------------------------- cache ----

TEST(Cache, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Cache, MemoryHitAfterStore) {
  ResultCache cache;
  const ExperimentSpec spec = small_mm_spec();
  EXPECT_FALSE(cache.lookup(spec).has_value());
  const ExperimentResult r = execute(spec);
  cache.store(spec, r);
  const auto hit = cache.lookup(spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, r);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, DiskStorePersistsAcrossInstances) {
  const std::string dir =
      testing::TempDir() + "alge_cache_persist_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  const ExperimentSpec spec = small_mm_spec();
  const ExperimentResult r = execute(spec);
  {
    ResultCache cache(dir);
    cache.store(spec, r);
  }
  ResultCache fresh(dir);
  const auto hit = fresh.lookup(spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, r);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Cache, CorruptedDiskEntryRecoversAsMiss) {
  const std::string dir = testing::TempDir() + "alge_cache_corrupt_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  const ExperimentSpec spec = small_mm_spec();
  const ExperimentResult r = execute(spec);
  std::string entry_path;
  {
    ResultCache cache(dir);
    cache.store(spec, r);
    for (const auto& f : std::filesystem::directory_iterator(dir)) {
      entry_path = f.path().string();
    }
  }
  ASSERT_FALSE(entry_path.empty());

  // Truncated JSON.
  { std::ofstream(entry_path, std::ios::trunc) << "{\"spec\":{\"alg\""; }
  {
    ResultCache cache(dir);
    EXPECT_FALSE(cache.lookup(spec).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    // store() repairs the entry; the next fresh instance hits again.
    cache.store(spec, r);
  }
  {
    ResultCache cache(dir);
    ASSERT_TRUE(cache.lookup(spec).has_value());
  }

  // Valid JSON but for a different spec (e.g. a hash collision): rejected.
  {
    ExperimentSpec other = spec;
    other.seed = 999;
    json::Value doc = json::Value::object();
    doc.set("spec", other.to_json()).set("result", r.to_json());
    std::ofstream(entry_path, std::ios::trunc) << doc.dump();
  }
  {
    ResultCache cache(dir);
    EXPECT_FALSE(cache.lookup(spec).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
  }
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------- runner ----

std::vector<ExperimentSpec> mixed_sweep() {
  const core::MachineParams mp = core::MachineParams::unit();
  std::vector<ExperimentSpec> specs;
  {
    ExperimentSpec s = small_mm_spec();
    specs.push_back(s);
    s.c = 1;
    specs.push_back(s);
    s.ring_replication = true;
    s.c = 2;
    specs.push_back(s);
  }
  {
    ExperimentSpec s;
    s.alg = Alg::kSumma;
    s.params = mp;
    s.n = 24;
    s.q = 2;
    s.verify = true;
    specs.push_back(s);
  }
  {
    ExperimentSpec s;
    s.alg = Alg::kCaps;
    s.params = mp;
    s.n = 14;
    s.k = 1;
    s.caps_cutoff = 4;
    s.verify = true;
    specs.push_back(s);
  }
  {
    ExperimentSpec s;
    s.alg = Alg::kNBody;
    s.params = mp;
    s.n = 32;
    s.p = 8;
    s.c = 2;
    s.verify = true;
    specs.push_back(s);
  }
  {
    ExperimentSpec s;
    s.alg = Alg::kLu;
    s.params = mp;
    s.n = 16;
    s.nb = 4;
    s.q = 2;
    s.c = 1;
    s.verify = true;
    specs.push_back(s);
  }
  {
    ExperimentSpec s;
    s.alg = Alg::kFft;
    s.params = mp;
    s.r_dim = 16;
    s.c_dim = 16;
    s.p = 4;
    s.verify = true;
    specs.push_back(s);
    s.fft_bruck = true;
    specs.push_back(s);
  }
  for (const Alg a : {Alg::kCollBcast, Alg::kCollAllgather,
                      Alg::kCollA2aBruck}) {
    ExperimentSpec s;
    s.alg = a;
    s.params = mp;
    s.p = 8;
    s.payload_words = 32;
    specs.push_back(s);
  }
  return specs;
}

TEST(Runner, SweepIsDeterministicAcrossThreadCounts) {
  const std::vector<ExperimentSpec> specs = mixed_sweep();

  SweepOptions serial;
  serial.threads = 1;
  SweepRunner r1(serial);
  const auto serial_results = r1.run(specs);

  SweepOptions parallel;
  parallel.threads = 8;
  SweepRunner r8(parallel);
  const auto parallel_results = r8.run(specs);

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Bit-identical results (operator== compares every counter and energy
    // term exactly) and identical content addresses.
    EXPECT_EQ(serial_results[i], parallel_results[i]) << "spec " << i;
    EXPECT_EQ(r1.cache().key_of(specs[i]), r8.cache().key_of(specs[i]));
    if (specs[i].verify) {
      EXPECT_TRUE(serial_results[i].verified);
      EXPECT_LT(serial_results[i].max_abs_error, 1e-8);
    }
  }
  EXPECT_EQ(r8.stats().jobs, static_cast<int>(specs.size()));
  EXPECT_EQ(r8.stats().cache_hits, 0);
}

TEST(Runner, SecondRunIsAllCacheHits) {
  const std::vector<ExperimentSpec> specs = mixed_sweep();
  SweepOptions opts;
  opts.threads = 4;
  SweepRunner runner(opts);
  const auto first = runner.run(specs);
  EXPECT_EQ(runner.stats().cache_hits, 0);
  const auto second = runner.run(specs);
  EXPECT_EQ(runner.stats().cache_hits, static_cast<int>(specs.size()));
  EXPECT_EQ(runner.stats().executed, 0);
  EXPECT_EQ(first, second);
}

TEST(Runner, WarmDiskCacheServesResultsWithoutExecuting) {
  const std::string dir = testing::TempDir() + "alge_runner_disk_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  const std::vector<ExperimentSpec> specs = mixed_sweep();
  std::vector<ExperimentResult> cold;
  {
    SweepOptions opts;
    opts.threads = 2;
    opts.cache_dir = dir;
    SweepRunner runner(opts);
    cold = runner.run(specs);
  }
  SweepOptions opts;
  opts.threads = 2;
  opts.cache_dir = dir;
  SweepRunner warm(opts);
  const auto warm_results = warm.run(specs);
  EXPECT_EQ(warm.stats().cache_hits, static_cast<int>(specs.size()));
  EXPECT_EQ(cold, warm_results);
  std::filesystem::remove_all(dir);
}

TEST(Runner, ProgressReportsEveryJobOnce) {
  std::vector<std::pair<int, int>> calls;
  SweepOptions opts;
  opts.threads = 4;
  opts.progress = [&calls](int done, int total) {
    calls.emplace_back(done, total);
  };
  SweepRunner runner(opts);
  std::vector<ExperimentSpec> specs;
  for (int p : {2, 4, 8}) {
    ExperimentSpec s;
    s.alg = Alg::kCollBcast;
    s.params = core::MachineParams::unit();
    s.p = p;
    s.payload_words = 8;
    specs.push_back(s);
  }
  runner.run(specs);
  ASSERT_EQ(calls.size(), specs.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i].first, static_cast<int>(i) + 1);
    EXPECT_EQ(calls[i].second, static_cast<int>(specs.size()));
  }
}

TEST(Runner, InvalidSpecSurfacesAsException) {
  ExperimentSpec bad;
  bad.alg = Alg::kCollBcast;
  bad.p = 0;  // invalid
  bad.payload_words = 8;
  SweepOptions opts;
  opts.threads = 2;
  SweepRunner runner(opts);
  EXPECT_THROW(runner.run({bad}), invalid_argument_error);
}

TEST(Runner, BenchRecordAppendsToJsonArray) {
  const std::string path = testing::TempDir() + "alge_bench_record_" +
                           std::to_string(::getpid()) + ".json";
  std::filesystem::remove(path);
  SweepRunner runner;
  std::vector<ExperimentSpec> specs;
  ExperimentSpec s;
  s.alg = Alg::kCollBcast;
  s.params = core::MachineParams::unit();
  s.p = 4;
  s.payload_words = 8;
  specs.push_back(s);
  runner.run(specs);
  append_bench_record("unit_test", runner, path);
  append_bench_record("unit_test", runner, path);
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value records = json::parse(buf.str());
  ASSERT_EQ(records.as_array().size(), 2u);
  EXPECT_EQ(records.as_array()[0].at("bench").as_string(), "unit_test");
  EXPECT_EQ(records.as_array()[1].at("jobs").as_double(), 1.0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace alge::engine
