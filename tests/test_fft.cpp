#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "algs/fft/fft.hpp"
#include "algs/matmul/local.hpp"  // max_abs_diff
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace alge::algs {
namespace {

sim::MachineConfig unit_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

std::vector<double> random_complex(int n, Rng& rng) {
  std::vector<double> x(2 * static_cast<std::size_t>(n));
  rng.fill_uniform(x, -1.0, 1.0);
  return x;
}

TEST(FftLocal, MatchesNaiveDft) {
  Rng rng(2);
  for (int n : {1, 2, 4, 16, 64, 256}) {
    const auto x = random_complex(n, rng);
    auto y = x;
    fft_inplace(y, n);
    EXPECT_LT(max_abs_diff(y, naive_dft(x, n)), 1e-9 * n) << n;
  }
}

TEST(FftLocal, InverseRoundTrips) {
  Rng rng(3);
  const int n = 128;
  const auto x = random_complex(n, rng);
  auto y = x;
  fft_inplace(y, n);
  fft_inplace(y, n, /*inverse=*/true);
  EXPECT_LT(max_abs_diff(y, x), 1e-12 * n);
}

TEST(FftLocal, ParsevalHolds) {
  Rng rng(4);
  const int n = 64;
  const auto x = random_complex(n, rng);
  auto y = x;
  fft_inplace(y, n);
  double ex = 0.0;
  double ey = 0.0;
  for (std::size_t i = 0; i < x.size(); i += 2) {
    ex += x[i] * x[i] + x[i + 1] * x[i + 1];
    ey += y[i] * y[i] + y[i + 1] * y[i + 1];
  }
  EXPECT_NEAR(ey, ex * n, 1e-9 * n);
}

TEST(FftLocal, RejectsNonPowerOfTwo) {
  std::vector<double> x(6, 0.0);
  EXPECT_THROW(fft_inplace(x, 3), invalid_argument_error);
}

TEST(FftLocal, ImpulseGivesFlatSpectrum) {
  const int n = 16;
  std::vector<double> x(2 * n, 0.0);
  x[0] = 1.0;  // delta at 0
  fft_inplace(x, n);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(x[2 * static_cast<std::size_t>(k)], 1.0, 1e-12);
    EXPECT_NEAR(x[2 * static_cast<std::size_t>(k) + 1], 0.0, 1e-12);
  }
}

// --- Parallel four-step ---

class FftRuns
    : public ::testing::TestWithParam<std::tuple<int, int, int, AllToAllKind>> {
};

TEST_P(FftRuns, MatchesNaiveDft) {
  const auto [p, r_dim, c_dim, kind] = GetParam();
  const int n = r_dim * c_dim;
  Rng rng(55);
  const auto x = random_complex(n, rng);
  const auto ref = naive_dft(x, n);
  const int cl = c_dim / p;
  const int rl = r_dim / p;

  sim::Machine m(unit_config(p));
  std::vector<std::vector<double>> rows(static_cast<std::size_t>(p));
  m.run([&](sim::Comm& comm) {
    const int h = comm.rank();
    // Pack my columns j2 = h·cl + jl of the R×C view x[j1·C + j2].
    std::vector<double> cols(2 * static_cast<std::size_t>(r_dim) * cl);
    for (int jl = 0; jl < cl; ++jl) {
      const int j2 = h * cl + jl;
      for (int j1 = 0; j1 < r_dim; ++j1) {
        cols[2 * (static_cast<std::size_t>(jl) * r_dim + j1)] =
            x[2 * (static_cast<std::size_t>(j1) * c_dim + j2)];
        cols[2 * (static_cast<std::size_t>(jl) * r_dim + j1) + 1] =
            x[2 * (static_cast<std::size_t>(j1) * c_dim + j2) + 1];
      }
    }
    std::vector<double> out(2 * static_cast<std::size_t>(c_dim) * rl);
    fft_parallel(comm, n, r_dim, c_dim, cols, out, kind);
    rows[static_cast<std::size_t>(h)] = std::move(out);
  });

  // X[k1 + k2·R] lives at rank k1/rl, row k1 % rl, position k2.
  std::vector<double> got(2 * static_cast<std::size_t>(n));
  for (int k1 = 0; k1 < r_dim; ++k1) {
    const auto& blk = rows[static_cast<std::size_t>(k1 / rl)];
    for (int k2 = 0; k2 < c_dim; ++k2) {
      const std::size_t src =
          2 * (static_cast<std::size_t>(k1 % rl) * c_dim + k2);
      got[2 * (static_cast<std::size_t>(k2) * r_dim + k1)] = blk[src];
      got[2 * (static_cast<std::size_t>(k2) * r_dim + k1) + 1] = blk[src + 1];
    }
  }
  EXPECT_LT(max_abs_diff(got, ref), 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKinds, FftRuns,
    ::testing::Values(
        std::tuple{1, 8, 8, AllToAllKind::kDirect},
        std::tuple{2, 8, 8, AllToAllKind::kDirect},
        std::tuple{4, 8, 8, AllToAllKind::kDirect},
        std::tuple{4, 16, 8, AllToAllKind::kDirect},
        std::tuple{8, 16, 16, AllToAllKind::kDirect},
        std::tuple{2, 8, 8, AllToAllKind::kBruck},
        std::tuple{4, 16, 16, AllToAllKind::kBruck},
        std::tuple{8, 16, 16, AllToAllKind::kBruck},
        std::tuple{16, 16, 16, AllToAllKind::kBruck}));

TEST(FftCosts, PaperTradeoffBetweenVariants) {
  // Section IV: naive all-to-all has S = Θ(p), W = Θ(n/p); the tree version
  // S = Θ(log p) at W = Θ((n/p)·log p).
  const int p = 16;
  const int r_dim = 32;
  const int c_dim = 32;
  const int n = r_dim * c_dim;
  auto run = [&](AllToAllKind kind) {
    sim::Machine m(unit_config(p));
    Rng rng(5);
    m.run([&](sim::Comm& comm) {
      std::vector<double> cols(2 * static_cast<std::size_t>(r_dim) *
                               (c_dim / p));
      Rng local(static_cast<std::uint64_t>(comm.rank()) + 1);
      local.fill_uniform(cols, -1.0, 1.0);
      std::vector<double> out(2 * static_cast<std::size_t>(c_dim) *
                              (r_dim / p));
      fft_parallel(comm, n, r_dim, c_dim, cols, out, kind);
    });
    return m.totals();
  };
  const auto direct = run(AllToAllKind::kDirect);
  const auto bruck = run(AllToAllKind::kBruck);
  EXPECT_DOUBLE_EQ(direct.msgs_sent_max, p - 1.0);
  EXPECT_DOUBLE_EQ(bruck.msgs_sent_max, std::log2(p));
  EXPECT_GT(bruck.words_sent_max, direct.words_sent_max);
  // Direct variant moves (p-1)/p of the 2n/p per-rank words.
  EXPECT_DOUBLE_EQ(direct.words_sent_max, 2.0 * n / p * (p - 1.0) / p);
}

TEST(FftCosts, NoUseForExtraMemory) {
  // The FFT working set per rank is Θ(n/p) no matter what: memory high
  // water tracks the input size, unlike the replicating algorithms.
  const int p = 4;
  const int r_dim = 16;
  const int c_dim = 16;
  const int n = r_dim * c_dim;
  sim::Machine m(unit_config(p));
  m.run([&](sim::Comm& comm) {
    std::vector<double> cols(2 * static_cast<std::size_t>(r_dim) *
                                 (c_dim / p),
                             0.5);
    std::vector<double> out(2 * static_cast<std::size_t>(c_dim) *
                            (r_dim / p));
    fft_parallel(comm, n, r_dim, c_dim, cols, out);
  });
  // Tracked buffers: work (2n/p) + send/recv (2·2n/p each) = O(n/p).
  EXPECT_LE(m.totals().mem_highwater_max, 6 * 2 * n / p);
}

TEST(FftRejects, BadFactorization) {
  sim::Machine m(unit_config(2));
  EXPECT_THROW(m.run([&](sim::Comm& comm) {
                 std::vector<double> cols(2 * 8 * 4);
                 std::vector<double> out(2 * 8 * 4);
                 fft_parallel(comm, 60, 8, 8, cols, out);
               }),
               invalid_argument_error);
}

}  // namespace
}  // namespace alge::algs
