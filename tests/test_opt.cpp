// The generic Optimizer must reproduce the paper's closed-form n-body
// answers (Sections V-A..V-F), and the corrected Eq. (19)/(20) bounds must
// agree with direct evaluation of the power expressions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/algmodel.hpp"
#include "core/closed_forms.hpp"
#include "core/codesign.hpp"
#include "core/nbody_opt.hpp"
#include "core/opt.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace alge::core {
namespace {

MachineParams sample_params(Rng& rng) {
  MachineParams mp;
  mp.gamma_t = rng.uniform(1e-12, 1e-10);
  mp.beta_t = rng.uniform(1e-11, 1e-9);
  mp.alpha_t = rng.uniform(1e-8, 1e-6);
  mp.gamma_e = rng.uniform(1e-11, 1e-9);
  mp.beta_e = rng.uniform(1e-10, 1e-8);
  mp.alpha_e = rng.uniform(1e-8, 1e-6);
  mp.delta_e = rng.uniform(1e-10, 1e-8);
  mp.eps_e = rng.uniform(0.0, 1e-3);
  mp.max_msg_words = rng.uniform(256.0, 1e5);
  return mp;
}

class NBodySeeds : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    mp_ = sample_params(rng);
    f_ = rng.uniform(4.0, 40.0);
    opt_ = std::make_unique<NBodyOptimum>(f_, mp_);
    // Choose n so M0 sits strictly inside [n/p, n/sqrt(p)] for reasonable p.
    n_ = opt_->M0() * rng.uniform(100.0, 1000.0);
  }
  MachineParams mp_;
  double f_ = 0.0;
  double n_ = 0.0;
  std::unique_ptr<NBodyOptimum> opt_;
};

TEST_P(NBodySeeds, OptimizerFindsClosedFormMinimumEnergy) {
  NBodyModel model(f_);
  Optimizer solver(model, n_, mp_);
  const RunPoint best = solver.minimize_energy();
  ASSERT_TRUE(best.feasible);
  EXPECT_LT(rel_diff(best.E, opt_->min_energy(n_)), 2e-3);
  EXPECT_LT(rel_diff(best.M, opt_->M0()), 0.05);
}

TEST_P(NBodySeeds, MinimumEnergyAttainableAcrossStatedPRange) {
  NBodyModel model(f_);
  const double M0 = opt_->M0();
  const double p_lo = opt_->min_energy_p_lo(n_);
  const double p_hi = opt_->min_energy_p_hi(n_);
  EXPECT_LT(p_lo, p_hi);
  for (double t : {0.0, 0.5, 1.0}) {
    const double p = p_lo * std::pow(p_hi / p_lo, t);
    EXPECT_LT(rel_diff(model.energy(n_, p, M0, mp_), opt_->min_energy(n_)),
              1e-9);
  }
}

TEST_P(NBodySeeds, TimeBoundBelowThresholdForcesSmallerMemory) {
  // Section V-B: a deadline tighter than the threshold forces a 2D run at
  // p_min_for_time; the closed form and the generic optimizer must agree.
  NBodyModel model(f_);
  const double threshold = opt_->time_threshold_for_optimum();
  const double Tmax = threshold / 10.0;
  const double p_need = opt_->p_min_for_time(n_, Tmax);
  // The quadratic solves T(p_need) == Tmax on the 2D line.
  const double t_check =
      closed::nbody_time(n_, p_need, n_ / std::sqrt(p_need), f_, mp_);
  EXPECT_LT(rel_diff(t_check, Tmax), 1e-9);

  Optimizer solver(model, n_, mp_);
  const RunPoint got = solver.min_energy_given_time(Tmax);
  ASSERT_TRUE(got.feasible);
  EXPECT_LE(got.T, Tmax * 1.001);
  EXPECT_LT(rel_diff(got.E, opt_->min_energy_given_time(n_, Tmax)), 5e-3);
}

TEST_P(NBodySeeds, LooseTimeBoundRecoversGlobalOptimum) {
  const double threshold = opt_->time_threshold_for_optimum();
  EXPECT_LT(rel_diff(opt_->min_energy_given_time(n_, threshold * 10.0),
                     opt_->min_energy(n_)),
            1e-12);
}

TEST_P(NBodySeeds, EnergyBudgetClosedFormMatchesModel) {
  // Section V-C: at the returned p (2D limit), the energy equals the budget.
  const double Emax = opt_->min_energy(n_) * 1.5;
  const double p_star = opt_->max_p_given_energy(n_, Emax);
  const double e_check =
      closed::nbody_energy(n_, n_ / std::sqrt(p_star), f_, mp_);
  EXPECT_LT(rel_diff(e_check, Emax), 1e-8);
  // And the optimizer's best time under the budget matches the closed form
  // (give it a machine at least as large as the closed-form optimum).
  NBodyModel model(f_);
  Optimizer solver(model, n_, mp_);
  OptLimits lim;
  lim.p_available = p_star * 16.0;
  const RunPoint got = solver.min_time_given_energy(Emax, lim);
  ASSERT_TRUE(got.feasible);
  EXPECT_LT(rel_diff(got.T, opt_->min_time_given_energy(n_, Emax)), 5e-3);
}

TEST_P(NBodySeeds, InfeasibleEnergyBudgetThrows) {
  EXPECT_THROW(opt_->max_p_given_energy(n_, opt_->min_energy(n_) * 0.5),
               invalid_argument_error);
}

TEST_P(NBodySeeds, Eq19TotalPowerBoundIsTight) {
  const double M = opt_->M0() * 2.0;
  const double Ptot = 1234.5;
  const double p_star = opt_->max_p_given_total_power(Ptot, M);
  // p_star processors at memory M draw exactly Ptot on average.
  EXPECT_LT(rel_diff(p_star * opt_->proc_power(M), Ptot), 1e-12);
}

TEST_P(NBodySeeds, Eq20ProcPowerBoundIsTight) {
  // The corrected Eq. (20) root must satisfy proc_power(M) == Pmax, and
  // power must be below the cap just inside the root.
  const double M0 = opt_->M0();
  const double Pmax = opt_->proc_power(M0) * 1.7;
  const double M_hi = opt_->max_M_given_proc_power(Pmax);
  ASSERT_GT(M_hi, 0.0);
  EXPECT_LT(rel_diff(opt_->proc_power(M_hi), Pmax), 1e-6);
  EXPECT_LT(opt_->proc_power(M_hi * 0.999), Pmax);
  EXPECT_GT(opt_->proc_power(M_hi * 1.001), Pmax);
}

TEST_P(NBodySeeds, ProcPowerAtM0RangeAllowsGlobalOptimum) {
  // If Pmax admits M0, min-energy is attainable within the power bound
  // (Section V-E discussion).
  const double M0 = opt_->M0();
  const double Pmax = opt_->proc_power(M0) * 1.01;
  EXPECT_GE(opt_->max_M_given_proc_power(Pmax), M0 * 0.999);
}

TEST_P(NBodySeeds, GflopsPerWattIsScaleFree) {
  const double a = opt_->flops_per_joule_at_optimum();
  for (double n : {1e4, 1e6, 1e8}) {
    EXPECT_LT(rel_diff(a, f_ * n * n / opt_->min_energy(n)), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NBodySeeds, ::testing::Range(0, 12));

TEST(OptimizerMatmul, MinTimeUsesWholeMachineAndAllUsefulMemory) {
  ClassicalMatmulModel model;
  MachineParams mp = MachineParams::unit();
  Optimizer solver(model, 4096.0, mp);
  OptLimits lim;
  lim.p_available = 4096.0;
  lim.M_cap = 1e12;
  const RunPoint best = solver.minimize_time(lim);
  ASSERT_TRUE(best.feasible);
  EXPECT_LT(rel_diff(best.p, lim.p_available), 1e-6);
  EXPECT_LT(rel_diff(best.M, model.max_useful_memory(4096.0, best.p)), 1e-6);
}

TEST(OptimizerMatmul, MemoryCapRestrictsSmallP) {
  // With a per-processor memory cap the problem only fits at p >= n^2/M_cap.
  ClassicalMatmulModel model;
  MachineParams mp = MachineParams::unit();
  const double n = 4096.0;
  Optimizer solver(model, n, mp);
  OptLimits lim;
  lim.M_cap = n * n / 256.0;  // forces p >= 256
  const RunPoint best = solver.minimize_energy(lim);
  ASSERT_TRUE(best.feasible);
  EXPECT_GE(best.p, 255.0);
}

TEST(OptimizerMatmul, InfeasibleWhenMachineTooSmall) {
  ClassicalMatmulModel model;
  MachineParams mp = MachineParams::unit();
  Optimizer solver(model, 1e6, mp);
  OptLimits lim;
  lim.p_available = 4.0;
  lim.M_cap = 1000.0;  // 1e12 words of data will never fit
  const RunPoint best = solver.minimize_energy(lim);
  EXPECT_FALSE(best.feasible);
}

TEST(OptimizerMatmul, EnergyOptimumPrefersSmallestP) {
  // Inside the scaling range E is flat in p; the solver must report the
  // smallest p attaining the optimum.
  ClassicalMatmulModel model;
  MachineParams mp = MachineParams::unit();
  mp.delta_e = 1e-6;  // cheap memory: optimum M is the replication limit
  const double n = 4096.0;
  Optimizer solver(model, n, mp);
  const RunPoint best = solver.minimize_energy();
  ASSERT_TRUE(best.feasible);
  // With the optimum at memory M*, no p below p_min(n, M*) can hold it.
  EXPECT_LT(best.p, model.p_min(n, best.M) * 1.05);
}

TEST(OptimizerGeneric, EvaluateRejectsUnderfullMemory) {
  ClassicalMatmulModel model;
  Optimizer solver(model, 1024.0, MachineParams::unit());
  const RunPoint pt = solver.evaluate(4.0, /*M=*/16.0);
  EXPECT_FALSE(pt.feasible);
}

TEST(OptimizerGeneric, TotalPowerBoundCapsProcessors) {
  NBodyModel model(16.0);
  MachineParams mp = MachineParams::unit();
  mp.max_msg_words = 1e6;
  const double n = 1e5;
  Optimizer solver(model, n, mp);
  NBodyOptimum closed_opt(16.0, mp);
  const double M_ref = closed_opt.M0();
  const double Ptot = closed_opt.proc_power(M_ref) * (n / M_ref) * 4.0;
  const RunPoint fast = solver.min_time_given_total_power(Ptot);
  ASSERT_TRUE(fast.feasible);
  EXPECT_LE(fast.total_power(), Ptot * 1.01);
  // Unconstrained min-time draws more power than the bound allows.
  const RunPoint unbounded = solver.minimize_time();
  EXPECT_GT(unbounded.total_power(), Ptot);
  EXPECT_LE(fast.T * 1.0000001, 1.0 / 0.0);  // finite
  EXPECT_GE(fast.T, unbounded.T);
}

TEST(Codesign, ScaleSpecOnlyTouchesSelectedParams) {
  MachineParams mp = MachineParams::unit();
  const MachineParams scaled =
      scale_energy_params(mp, ParamScaleSpec::only_beta_e(), 0.25);
  EXPECT_DOUBLE_EQ(scaled.beta_e, 0.25);
  EXPECT_DOUBLE_EQ(scaled.gamma_e, 1.0);
  EXPECT_DOUBLE_EQ(scaled.delta_e, 1.0);
  EXPECT_DOUBLE_EQ(scaled.beta_t, 1.0);
}

TEST(Codesign, JointScalingDominatesSingleParameter) {
  // Figure 6 vs Figure 7: halving everything is at least as good as halving
  // any one parameter, strictly better after a few generations.
  ClassicalMatmulModel model;
  MachineParams mp = MachineParams::unit();
  mp.max_msg_words = 1e6;
  const double n = 4096.0;
  const double p = 64.0;
  const double M = model.min_memory(n, p) * 2.0;
  const auto joint = efficiency_vs_generation(model, n, p, M, mp,
                                              ParamScaleSpec::all(), 6);
  const auto gamma_only = efficiency_vs_generation(
      model, n, p, M, mp, ParamScaleSpec::only_gamma_e(), 6);
  ASSERT_EQ(joint.size(), 7u);
  EXPECT_DOUBLE_EQ(joint[0].gflops_per_watt, gamma_only[0].gflops_per_watt);
  for (std::size_t g = 1; g < joint.size(); ++g) {
    EXPECT_GE(joint[g].gflops_per_watt, gamma_only[g].gflops_per_watt);
  }
  // Joint scaling improves by exactly 2x per generation (energy halves).
  EXPECT_LT(rel_diff(joint[3].gflops_per_watt,
                     8.0 * joint[0].gflops_per_watt),
            1e-9);
  // Single-parameter scaling saturates.
  EXPECT_LT(gamma_only[6].gflops_per_watt,
            8.0 * gamma_only[0].gflops_per_watt);
}

TEST(Codesign, GenerationsToTargetFindsCrossing) {
  ClassicalMatmulModel model;
  MachineParams mp = MachineParams::unit();
  mp.max_msg_words = 1e6;
  const double n = 4096.0;
  const double p = 64.0;
  const double M = model.min_memory(n, p) * 2.0;
  const double base = gflops_per_watt(model, n, p, M, mp);
  const int g = generations_to_target(model, n, p, M, mp,
                                      ParamScaleSpec::all(), base * 10.0, 20);
  EXPECT_EQ(g, 4);  // 2^4 = 16 >= 10
  EXPECT_EQ(generations_to_target(model, n, p, M, mp,
                                  ParamScaleSpec::only_beta_e(), base * 1e6,
                                  20),
            -1);
}

}  // namespace
}  // namespace alge::core
