// Shared helpers for the distributed-algorithm tests: block scatter/gather
// around Machine::run and a serial matmul reference.
#pragma once

#include <vector>

#include "algs/matmul/local.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace alge::testutil {

/// Extract block (bi, bj) of a q×q blocking of the n×n row-major matrix m.
inline std::vector<double> block_of(const std::vector<double>& m, int n,
                                    int q, int bi, int bj) {
  const int nb = n / q;
  std::vector<double> out(static_cast<std::size_t>(nb) * nb);
  for (int r = 0; r < nb; ++r) {
    for (int c = 0; c < nb; ++c) {
      out[static_cast<std::size_t>(r) * nb + c] =
          m[static_cast<std::size_t>(bi * nb + r) * n + (bj * nb + c)];
    }
  }
  return out;
}

/// Write block (bi, bj) back into the n×n matrix m.
inline void set_block(std::vector<double>& m, int n, int q, int bi, int bj,
                      const std::vector<double>& block) {
  const int nb = n / q;
  ALGE_CHECK(block.size() == static_cast<std::size_t>(nb) * nb,
             "block size mismatch");
  for (int r = 0; r < nb; ++r) {
    for (int c = 0; c < nb; ++c) {
      m[static_cast<std::size_t>(bi * nb + r) * n + (bj * nb + c)] =
          block[static_cast<std::size_t>(r) * nb + c];
    }
  }
}

/// Serial reference product C = A·B for n×n row-major matrices.
inline std::vector<double> reference_matmul(const std::vector<double>& a,
                                            const std::vector<double>& b,
                                            int n) {
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  algs::matmul_add(a.data(), b.data(), c.data(), n, n, n);
  return c;
}

}  // namespace alge::testutil
