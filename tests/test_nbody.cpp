#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "algs/matmul/local.hpp"  // max_abs_diff
#include "algs/nbody/nbody.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::algs {
namespace {

sim::MachineConfig unit_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

TEST(NBodyKernel, NewtonThirdLawOnPair) {
  // Two particles pull each other with equal and opposite force.
  std::vector<double> parts = {0.0, 0.0, 0.0, 2.0,   //
                               1.0, 0.0, 0.0, 3.0};
  const auto f = direct_forces(parts);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_GT(f[0], 0.0);             // particle 0 pulled toward +x
  EXPECT_NEAR(f[0], -f[3], 1e-12);  // equal and opposite
  EXPECT_NEAR(f[1], 0.0, 1e-15);
  EXPECT_NEAR(f[2], 0.0, 1e-15);
}

TEST(NBodyKernel, TotalForceIsZero) {
  // Internal forces of an isolated system sum to zero (softening preserves
  // antisymmetry).
  Rng rng(31);
  const auto parts = random_particles(50, rng);
  const auto f = direct_forces(parts);
  double sx = 0.0;
  double sy = 0.0;
  double sz = 0.0;
  for (std::size_t i = 0; i < f.size(); i += 3) {
    sx += f[i];
    sy += f[i + 1];
    sz += f[i + 2];
  }
  EXPECT_NEAR(sx, 0.0, 1e-9);
  EXPECT_NEAR(sy, 0.0, 1e-9);
  EXPECT_NEAR(sz, 0.0, 1e-9);
}

TEST(NBodyKernel, InteractionCountExcludesSelfPairs) {
  Rng rng(1);
  const auto parts = random_particles(10, rng);
  std::vector<double> forces(30, 0.0);
  EXPECT_DOUBLE_EQ(accumulate_forces(parts, parts, forces, true), 90.0);
  std::vector<double> forces2(30, 0.0);
  EXPECT_DOUBLE_EQ(accumulate_forces(parts, parts, forces2, false), 100.0);
}

TEST(NBodyKernel, BlockDecompositionMatchesDirect) {
  // Summing one-sided block contributions reproduces the all-pairs result.
  Rng rng(17);
  const int n = 24;
  const auto parts = random_particles(n, rng);
  const auto ref = direct_forces(parts);
  const int nb = 8;
  std::vector<double> forces(static_cast<std::size_t>(n) * 3, 0.0);
  for (int bt = 0; bt < n / nb; ++bt) {
    auto targets = std::span<const double>(parts).subspan(
        static_cast<std::size_t>(bt) * nb * 4, static_cast<std::size_t>(nb) * 4);
    auto out = std::span<double>(forces).subspan(
        static_cast<std::size_t>(bt) * nb * 3, static_cast<std::size_t>(nb) * 3);
    for (int bs = 0; bs < n / nb; ++bs) {
      auto sources = std::span<const double>(parts).subspan(
          static_cast<std::size_t>(bs) * nb * 4,
          static_cast<std::size_t>(nb) * 4);
      accumulate_forces(targets, sources, out, bt == bs);
    }
  }
  EXPECT_LT(max_abs_diff(forces, ref), 1e-11);
}

// --- Parallel algorithm, parameterized over (p, c, n) ---

class NBodyRuns
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NBodyRuns, MatchesDirectReference) {
  const auto [p, c, n] = GetParam();
  topo::TeamGrid grid(p, c);
  Rng rng(1234);
  const auto parts = random_particles(n, rng);
  const auto ref = direct_forces(parts);
  const int P = grid.cols();
  const int nb = n / P;

  sim::Machine m(unit_config(p));
  std::vector<std::vector<double>> force_blocks(static_cast<std::size_t>(P));
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    if (i == 0) {
      auto mine = std::span<const double>(parts).subspan(
          static_cast<std::size_t>(j) * nb * 4,
          static_cast<std::size_t>(nb) * 4);
      std::vector<double> f(static_cast<std::size_t>(nb) * 3, 0.0);
      nbody_replicated(comm, grid, n, mine, f);
      force_blocks[static_cast<std::size_t>(j)] = std::move(f);
    } else {
      nbody_replicated(comm, grid, n, {}, {});
    }
  });

  std::vector<double> forces;
  for (const auto& blk : force_blocks) {
    forces.insert(forces.end(), blk.begin(), blk.end());
  }
  ASSERT_EQ(forces.size(), ref.size());
  EXPECT_LT(max_abs_diff(forces, ref), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSizes, NBodyRuns,
    ::testing::Values(std::tuple{1, 1, 12},    // serial
                      std::tuple{4, 1, 16},    // classical ring
                      std::tuple{4, 2, 16},    // 2 teams of 2
                      std::tuple{8, 2, 16},    //
                      std::tuple{9, 3, 18},    // c² = p ("2D limit")
                      std::tuple{16, 4, 32},   //
                      std::tuple{6, 2, 24},    // c does not divide p/c
                      std::tuple{12, 4, 24},   // c > sqrt(p)
                      std::tuple{8, 8, 16}));  // fully replicated

TEST(NBodyCosts, ReplicationCutsPerRankWords) {
  // Eq. 15's W = n²/(p·M): with M = c·(n/p) the per-rank traffic of the
  // shift phase drops by c.
  const int n = 64;
  auto w_max = [&](int p, int c) {
    topo::TeamGrid grid(p, c);
    sim::Machine m(unit_config(p));
    Rng rng(7);
    const auto parts = random_particles(n, rng);
    const int nb = n / grid.cols();
    m.run([&](sim::Comm& comm) {
      const int i = grid.row_of(comm.rank());
      const int j = grid.col_of(comm.rank());
      if (i == 0) {
        auto mine = std::span<const double>(parts).subspan(
            static_cast<std::size_t>(j) * nb * 4,
            static_cast<std::size_t>(nb) * 4);
        std::vector<double> f(static_cast<std::size_t>(nb) * 3, 0.0);
        nbody_replicated(comm, grid, n, mine, f);
      } else {
        nbody_replicated(comm, grid, n, {}, {});
      }
    });
    return m.totals().words_sent_max;
  };
  // Same machine size; replication trades memory for words. The team
  // broadcast/reduce overhead is Θ(log c) blocks, so the c-fold drop in the
  // shift phase needs p/c >> c to show through; p=64, c=4 suffices.
  const double w_c1 = w_max(64, 1);
  const double w_c4 = w_max(64, 4);
  EXPECT_LT(w_c4, w_c1 / 2.0);
}

TEST(NBodyCosts, FlopsAreBalancedAcrossTeams) {
  const int n = 32;
  const int p = 8;
  const int c = 2;
  topo::TeamGrid grid(p, c);
  sim::Machine m(unit_config(p));
  Rng rng(5);
  const auto parts = random_particles(n, rng);
  const int nb = n / grid.cols();
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    if (i == 0) {
      auto mine = std::span<const double>(parts).subspan(
          static_cast<std::size_t>(j) * nb * 4,
          static_cast<std::size_t>(nb) * 4);
      std::vector<double> f(static_cast<std::size_t>(nb) * 3, 0.0);
      nbody_replicated(comm, grid, n, mine, f);
    } else {
      nbody_replicated(comm, grid, n, {}, {});
    }
  });
  // Total interactions = n² - n (self-pairs skipped), each charged
  // kInteractionFlops; the reduce adds a few more flops.
  const double interaction_flops = kInteractionFlops * (n * n - n);
  EXPECT_GE(m.totals().flops_total, interaction_flops);
  EXPECT_LT(m.totals().flops_total, interaction_flops * 1.05);
  // No rank does more than ~2x its fair share (offsets split unevenly only
  // by one step).
  EXPECT_LT(m.totals().flops_max, 2.0 * interaction_flops / p);
}

TEST(NBodyRejects, BadBlockCount) {
  topo::TeamGrid grid(4, 2);  // P=2 blocks
  sim::Machine m(unit_config(4));
  auto run = [&] {
    m.run([&](sim::Comm& comm) {
      std::vector<double> parts(4 * 7, 0.0);  // n=7 not divisible by P=2
      std::vector<double> f(3 * 7, 0.0);
      std::span<const double> in;
      std::span<double> out;
      if (grid.row_of(comm.rank()) == 0) {
        in = parts;
        out = f;
      }
      nbody_replicated(comm, grid, 7, in, out);
    });
  };
  EXPECT_THROW(run(), alge::invalid_argument_error);
}

}  // namespace
}  // namespace alge::algs
