// Variant collectives: ring-pipelined broadcast and recursive-doubling
// allreduce — correctness across group sizes, and the cost signatures that
// distinguish them from the binomial-tree versions.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::sim {
namespace {

MachineConfig unit_config(int p) {
  MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

class VariantSizes : public ::testing::TestWithParam<int> {};

TEST_P(VariantSizes, RingBcastDeliversToAll) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    std::vector<double> data(5);
    if (c.rank() == p / 2) std::iota(data.begin(), data.end(), 3.0);
    c.bcast_ring(data, p / 2, Group::world(p));
    got[static_cast<std::size_t>(c.rank())] = data;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              (std::vector<double>{3.0, 4.0, 5.0, 6.0, 7.0}))
        << "rank " << r;
  }
}

TEST_P(VariantSizes, RingBcastSegmentCountsDoNotChangePayload) {
  const int p = GetParam();
  for (int segments : {1, 2, 7}) {
    Machine m(unit_config(p));
    std::vector<double> last;
    m.run([&](Comm& c) {
      std::vector<double> data(13);
      if (c.rank() == 0) std::iota(data.begin(), data.end(), 1.0);
      c.bcast_ring(data, 0, Group::world(p), segments);
      if (c.rank() == p - 1) last = data;
    });
    EXPECT_DOUBLE_EQ(last[12], 13.0) << "segments=" << segments;
  }
}

TEST_P(VariantSizes, DoublingAllreduceMatchesTreeVersion) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<double> tree_result;
  std::vector<double> doubling_result;
  m.run([&](Comm& c) {
    std::vector<double> a = {static_cast<double>(c.rank()),
                             static_cast<double>(c.rank() * c.rank())};
    std::vector<double> b = a;
    c.allreduce_sum(a, Group::world(p));
    c.allreduce_doubling(b, Group::world(p));
    if (c.rank() == 0) tree_result = a;
    if (c.rank() == p - 1) doubling_result = b;
  });
  ASSERT_EQ(tree_result.size(), 2u);
  EXPECT_EQ(tree_result, doubling_result);
  EXPECT_DOUBLE_EQ(tree_result[0], p * (p - 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VariantSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32));

TEST(VariantCosts, RingBcastCapsPerRankWords) {
  const int p = 8;
  const std::size_t k = 64;
  auto w_max = [&](bool ring) {
    Machine m(unit_config(p));
    m.run([&](Comm& c) {
      std::vector<double> data(k, 1.0);
      if (ring) {
        c.bcast_ring(data, 0, Group::world(p));
      } else {
        c.bcast(data, 0, Group::world(p));
      }
    });
    return m.totals().words_sent_max;
  };
  EXPECT_DOUBLE_EQ(w_max(true), static_cast<double>(k));
  EXPECT_DOUBLE_EQ(w_max(false), k * std::log2(p));
}

TEST(VariantCosts, DoublingHasLogRoundsOfFullPayload) {
  const int p = 16;
  const std::size_t k = 32;
  Machine m(unit_config(p));
  m.run([&](Comm& c) {
    std::vector<double> data(k, 1.0);
    c.allreduce_doubling(data, Group::world(p));
  });
  // Power-of-two group: every rank sends exactly log2(p) payloads.
  EXPECT_DOUBLE_EQ(m.totals().words_sent_max, k * std::log2(p));
  EXPECT_DOUBLE_EQ(m.totals().msgs_sent_max, std::log2(p));
  // The tree version's critical path is about twice as long.
  Machine m2(unit_config(p));
  m2.run([&](Comm& c) {
    std::vector<double> data(k, 1.0);
    c.allreduce_sum(data, Group::world(p));
  });
  EXPECT_GT(m2.makespan(), 1.5 * m.makespan());
}

TEST(Mm25dRing, RingReplicationMatchesTreeResult) {
  const int q = 4;
  const int c = 4;
  const int n = 16;
  topo::Grid3D grid(q, c);
  Rng rng(5);
  const auto A = algs::random_matrix(n, n, rng);
  const auto B = algs::random_matrix(n, n, rng);
  auto run = [&](bool ring) {
    Machine m(unit_config(grid.p()));
    std::vector<std::vector<double>> blocks(
        static_cast<std::size_t>(q) * q);
    algs::Mm25dOptions opts;
    opts.ring_replication = ring;
    m.run([&](Comm& comm) {
      const int i = grid.row_of(comm.rank());
      const int j = grid.col_of(comm.rank());
      if (grid.layer_of(comm.rank()) == 0) {
        const int nb = n / q;
        std::vector<double> a(static_cast<std::size_t>(nb) * nb);
        std::vector<double> b(a.size());
        for (int r = 0; r < nb; ++r) {
          for (int cc = 0; cc < nb; ++cc) {
            a[static_cast<std::size_t>(r) * nb + cc] =
                A[static_cast<std::size_t>(i * nb + r) * n + j * nb + cc];
            b[static_cast<std::size_t>(r) * nb + cc] =
                B[static_cast<std::size_t>(i * nb + r) * n + j * nb + cc];
          }
        }
        std::vector<double> cb(a.size(), 0.0);
        algs::mm_25d(comm, grid, n, a, b, cb, opts);
        blocks[static_cast<std::size_t>(i) * q + j] = std::move(cb);
      } else {
        algs::mm_25d(comm, grid, n, {}, {}, {}, opts);
      }
    });
    return std::pair{blocks, m.totals().words_sent_max};
  };
  const auto [tree_blocks, tree_w] = run(false);
  const auto [ring_blocks, ring_w] = run(true);
  EXPECT_EQ(tree_blocks, ring_blocks);
  // Ring replication removes the root's log c replication copies.
  EXPECT_LT(ring_w, tree_w);
}

}  // namespace
}  // namespace alge::sim
