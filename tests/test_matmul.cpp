#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "sim_test_util.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::algs {
namespace {

using testutil::block_of;
using testutil::reference_matmul;
using testutil::set_block;

sim::MachineConfig unit_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

TEST(LocalMatmul, MatchesNaiveOnRectangles) {
  Rng rng(42);
  for (auto [m, k, n] : {std::tuple{3, 5, 7}, {16, 16, 16}, {1, 9, 2},
                         {65, 33, 17}}) {
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<double> c1(static_cast<std::size_t>(m) * n, 0.0);
    std::vector<double> c2(static_cast<std::size_t>(m) * n, 0.0);
    matmul_add(a.data(), b.data(), c1.data(), m, k, n);
    matmul_add_blocked(a.data(), b.data(), c2.data(), m, k, n, 8);
    EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
  }
}

TEST(LocalMatmul, AccumulatesIntoC) {
  Rng rng(7);
  const int n = 8;
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 1.0);
  matmul_add(a.data(), b.data(), c.data(), n, n, n);
  auto expect = reference_matmul(a, b, n);
  for (auto& x : expect) x += 1.0;
  EXPECT_LT(max_abs_diff(c, expect), 1e-12);
}

// --- 2D algorithms, parameterized over grid size ---

class MatmulGrids : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatmulGrids, CannonMatchesReference) {
  const auto [q, n] = GetParam();
  topo::Grid2D grid(q);
  Rng rng(1234);
  const auto A = random_matrix(n, n, rng);
  const auto B = random_matrix(n, n, rng);
  sim::Machine m(unit_config(grid.p()));
  std::vector<std::vector<double>> c_blocks(
      static_cast<std::size_t>(grid.p()));
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    const auto a = block_of(A, n, q, i, j);
    const auto b = block_of(B, n, q, i, j);
    std::vector<double> c(a.size(), 0.0);
    cannon_2d(comm, grid, n, a, b, c);
    c_blocks[static_cast<std::size_t>(comm.rank())] = std::move(c);
  });
  std::vector<double> C(static_cast<std::size_t>(n) * n, 0.0);
  for (int r = 0; r < grid.p(); ++r) {
    set_block(C, n, q, grid.row_of(r), grid.col_of(r),
              c_blocks[static_cast<std::size_t>(r)]);
  }
  EXPECT_LT(max_abs_diff(C, reference_matmul(A, B, n)), 1e-10 * n);
}

TEST_P(MatmulGrids, SummaMatchesReference) {
  const auto [q, n] = GetParam();
  topo::Grid2D grid(q);
  Rng rng(99);
  const auto A = random_matrix(n, n, rng);
  const auto B = random_matrix(n, n, rng);
  sim::Machine m(unit_config(grid.p()));
  std::vector<std::vector<double>> c_blocks(
      static_cast<std::size_t>(grid.p()));
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    const auto a = block_of(A, n, q, i, j);
    const auto b = block_of(B, n, q, i, j);
    std::vector<double> c(a.size(), 0.0);
    summa_2d(comm, grid, n, a, b, c);
    c_blocks[static_cast<std::size_t>(comm.rank())] = std::move(c);
  });
  std::vector<double> C(static_cast<std::size_t>(n) * n, 0.0);
  for (int r = 0; r < grid.p(); ++r) {
    set_block(C, n, q, grid.row_of(r), grid.col_of(r),
              c_blocks[static_cast<std::size_t>(r)]);
  }
  EXPECT_LT(max_abs_diff(C, reference_matmul(A, B, n)), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(GridsAndSizes, MatmulGrids,
                         ::testing::Values(std::tuple{1, 8}, std::tuple{2, 8},
                                           std::tuple{2, 16},
                                           std::tuple{3, 12},
                                           std::tuple{4, 16},
                                           std::tuple{4, 32},
                                           std::tuple{5, 20}));

// --- 2.5D, parameterized over (q, c, n) ---

class Matmul25D
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Matmul25D, MatchesReference) {
  const auto [q, c, n] = GetParam();
  topo::Grid3D grid(q, c);
  Rng rng(4321);
  const auto A = random_matrix(n, n, rng);
  const auto B = random_matrix(n, n, rng);
  sim::Machine m(unit_config(grid.p()));
  std::vector<std::vector<double>> c_blocks(
      static_cast<std::size_t>(grid.p()));
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    const int l = grid.layer_of(comm.rank());
    if (l == 0) {
      const auto a = block_of(A, n, q, i, j);
      const auto b = block_of(B, n, q, i, j);
      std::vector<double> cb(a.size(), 0.0);
      mm_25d(comm, grid, n, a, b, cb);
      c_blocks[static_cast<std::size_t>(comm.rank())] = std::move(cb);
    } else {
      mm_25d(comm, grid, n, {}, {}, {});
    }
  });
  std::vector<double> C(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < q; ++i) {
    for (int j = 0; j < q; ++j) {
      set_block(C, n, q, i, j,
                c_blocks[static_cast<std::size_t>(grid.rank_of(i, j, 0))]);
    }
  }
  EXPECT_LT(max_abs_diff(C, reference_matmul(A, B, n)), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSizes, Matmul25D,
    ::testing::Values(std::tuple{2, 1, 8},   // degenerates to Cannon
                      std::tuple{2, 2, 8},   // 3D cube p=8
                      std::tuple{4, 1, 16},  //
                      std::tuple{4, 2, 16},  // true 2.5D, p=32
                      std::tuple{4, 2, 32},  //
                      std::tuple{4, 4, 16},  // 3D cube p=64
                      std::tuple{6, 2, 24},  // non-power-of-two q
                      std::tuple{6, 3, 24}));

TEST(Matmul25D, RejectsBadReplicationFactor) {
  topo::Grid3D grid(4, 3);  // c=3 does not divide q=4
  sim::Machine m(unit_config(grid.p()));
  EXPECT_THROW(m.run([&](sim::Comm& comm) {
                 std::vector<double> z(16, 0.0);
                 mm_25d(comm, grid, 16, z, z, z);
               }),
               invalid_argument_error);
}

TEST(MatmulCosts, CannonPerRankWordsMatchTheory) {
  // Cannon moves 2 blocks per step for q-1 steps plus the initial skew:
  // every rank sends exactly 2(q-1)·nb² + (skew sends, ≤ 2nb²) words.
  const int q = 4;
  const int n = 32;
  const int nb2 = (n / q) * (n / q);
  topo::Grid2D grid(q);
  sim::Machine m(unit_config(grid.p()));
  Rng rng(5);
  m.run([&](sim::Comm& comm) {
    const auto a = random_matrix(n / q, n / q, rng);
    const auto b = random_matrix(n / q, n / q, rng);
    std::vector<double> c(a.size(), 0.0);
    cannon_2d(comm, grid, n, a, b, c);
  });
  const auto t = m.totals();
  // Max per rank: skew (2 blocks, except the ranks whose skew is a
  // self-send) + 2(q-1) shift blocks.
  EXPECT_DOUBLE_EQ(t.words_sent_max, (2.0 * (q - 1) + 2.0) * nb2);
  // Every rank computes q block-multiplies.
  EXPECT_DOUBLE_EQ(t.flops_total,
                   static_cast<double>(grid.p()) * q * 2.0 * nb2 * (n / q));
}

TEST(MatmulCosts, ReplicationCutsPerRankBandwidth) {
  // The 2.5D claim at the heart of the paper, measured on the simulator:
  // with the same per-rank block size (fixed M), multiplying the processor
  // count by c cuts each rank's shift-phase traffic by c. The replication
  // broadcast itself costs Θ(log c) blocks, so at finite q the ratio is
  // (q/c + log c + O(1)) / (q + O(1)); q=8 is enough to see the drop.
  const int n = 32;
  auto run = [&](int q, int c) {
    topo::Grid3D grid(q, c);
    sim::Machine m(unit_config(grid.p()));
    Rng rng(17);
    const auto A = testutil::reference_matmul(
        random_matrix(n, n, rng), random_matrix(n, n, rng), n);  // any data
    m.run([&](sim::Comm& comm) {
      const int i = grid.row_of(comm.rank());
      const int j = grid.col_of(comm.rank());
      if (grid.layer_of(comm.rank()) == 0) {
        const auto a = block_of(A, n, q, i, j);
        const auto b = block_of(A, n, q, i, j);
        std::vector<double> cb(a.size(), 0.0);
        mm_25d(comm, grid, n, a, b, cb);
      } else {
        mm_25d(comm, grid, n, {}, {}, {});
      }
    });
    return m.totals().words_sent_max;
  };
  const double w_c1 = run(8, 1);
  const double w_c2 = run(8, 2);
  const double w_c4 = run(8, 4);
  EXPECT_LT(w_c2, w_c1);
  EXPECT_LT(w_c4, w_c2);
  EXPECT_LE(w_c4, 0.6 * w_c1);
}

TEST(MatmulDeterminism, RepeatedRunsProduceIdenticalCounters) {
  const int q = 2;
  const int n = 8;
  topo::Grid2D grid(q);
  auto run_once = [&] {
    sim::Machine m(unit_config(grid.p()));
    Rng rng(3);
    const auto A = random_matrix(n, n, rng);
    const auto B = random_matrix(n, n, rng);
    m.run([&](sim::Comm& comm) {
      const auto a = block_of(A, n, q, grid.row_of(comm.rank()),
                              grid.col_of(comm.rank()));
      const auto b = block_of(B, n, q, grid.row_of(comm.rank()),
                              grid.col_of(comm.rank()));
      std::vector<double> c(a.size(), 0.0);
      cannon_2d(comm, grid, n, a, b, c);
    });
    return std::tuple{m.makespan(), m.totals().words_total,
                      m.totals().msgs_total, m.totals().flops_total};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace alge::algs
