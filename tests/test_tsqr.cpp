#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algs/matmul/local.hpp"
#include "algs/qr/tsqr.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace alge::algs {
namespace {

sim::MachineConfig unit_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

/// BᵀB for an m×b row-major block (the Gram matrix R must reproduce).
std::vector<double> gram(std::span<const double> a, int m, int b) {
  std::vector<double> g(static_cast<std::size_t>(b) * b, 0.0);
  for (int i = 0; i < b; ++i) {
    for (int j = 0; j < b; ++j) {
      double s = 0.0;
      for (int r = 0; r < m; ++r) {
        s += a[static_cast<std::size_t>(r) * b + i] *
             a[static_cast<std::size_t>(r) * b + j];
      }
      g[static_cast<std::size_t>(i) * b + j] = s;
    }
  }
  return g;
}

TEST(HouseholderQr, RIsUpperTriangular) {
  Rng rng(1);
  const int m = 12;
  const int b = 5;
  auto a = random_matrix(m, b, rng);
  const auto r = householder_qr_r(a, m, b);
  for (int i = 0; i < b; ++i) {
    for (int j = 0; j < i; ++j) {
      EXPECT_NEAR(r[static_cast<std::size_t>(i) * b + j], 0.0, 1e-14);
    }
  }
}

TEST(HouseholderQr, GramMatrixPreserved) {
  // QᵀQ = I  =>  AᵀA = RᵀR: the factorization-independent check.
  Rng rng(2);
  const int m = 20;
  const int b = 6;
  const auto a0 = random_matrix(m, b, rng);
  auto a = a0;
  const auto r = householder_qr_r(a, m, b);
  const auto want = gram(a0, m, b);
  const auto got = gram(r, b, b);
  EXPECT_LT(max_abs_diff(got, want), 1e-10 * m);
}

TEST(HouseholderQr, SquareCaseMatchesDiagonalSigns) {
  // For an already-upper-triangular A with positive diagonal, R = A up to
  // sign conventions; check |R| == |A|.
  const int b = 3;
  std::vector<double> a = {2.0, 1.0, 3.0,  //
                           0.0, 4.0, 5.0,  //
                           0.0, 0.0, 6.0};
  auto work = a;
  const auto r = householder_qr_r(work, b, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::fabs(r[i]), std::fabs(a[i]), 1e-12);
  }
}

TEST(HouseholderQr, RankDeficientColumnHandled) {
  // A zero column must not divide by zero; its R column is zero above too.
  const int m = 4;
  const int b = 2;
  std::vector<double> a = {1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0};
  const auto r = householder_qr_r(a, m, b);
  EXPECT_NEAR(r[1], 0.0, 1e-14);
  EXPECT_NEAR(r[3], 0.0, 1e-14);
}

TEST(HouseholderQr, RejectsWideBlocks) {
  std::vector<double> a(6, 1.0);
  EXPECT_THROW(householder_qr_r(a, 2, 3), invalid_argument_error);
}

class TsqrRuns : public ::testing::TestWithParam<int> {};

TEST_P(TsqrRuns, MatchesGatherQrUpToSigns) {
  const int p = GetParam();
  const int b = 4;
  const int rows = 6;  // per rank
  Rng rng(42);
  const auto A = random_matrix(rows * p, b, rng);
  const std::size_t lw = static_cast<std::size_t>(rows) * b;

  auto run = [&](bool use_tsqr) {
    sim::Machine m(unit_config(p));
    std::vector<double> r(static_cast<std::size_t>(b) * b);
    m.run([&](sim::Comm& comm) {
      auto mine = std::span<const double>(A).subspan(
          lw * static_cast<std::size_t>(comm.rank()), lw);
      std::span<double> out =
          comm.rank() == 0 ? std::span<double>(r) : std::span<double>{};
      if (use_tsqr) {
        tsqr(comm, b, mine, out);
      } else {
        gather_qr(comm, b, mine, out);
      }
    });
    return r;
  };
  const auto r_tree = run(true);
  const auto r_flat = run(false);
  // R is unique up to row signs; compare absolute values.
  for (std::size_t i = 0; i < r_tree.size(); ++i) {
    EXPECT_NEAR(std::fabs(r_tree[i]), std::fabs(r_flat[i]), 1e-9);
  }
  // And both reproduce the Gram matrix of the full A.
  const auto want = gram(A, rows * p, b);
  EXPECT_LT(max_abs_diff(gram(r_tree, b, b), want), 1e-9 * rows * p);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TsqrRuns,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(TsqrCosts, TreeBeatsGatherOnBandwidth) {
  const int p = 16;
  const int b = 4;
  const int rows = 16;
  Rng rng(7);
  const auto A = random_matrix(rows * p, b, rng);
  const std::size_t lw = static_cast<std::size_t>(rows) * b;
  auto words = [&](bool use_tsqr) {
    sim::Machine m(unit_config(p));
    std::vector<double> r(static_cast<std::size_t>(b) * b);
    m.run([&](sim::Comm& comm) {
      auto mine = std::span<const double>(A).subspan(
          lw * static_cast<std::size_t>(comm.rank()), lw);
      std::span<double> out =
          comm.rank() == 0 ? std::span<double>(r) : std::span<double>{};
      if (use_tsqr) {
        tsqr(comm, b, mine, out);
      } else {
        gather_qr(comm, b, mine, out);
      }
    });
    return m.totals().words_total;
  };
  // Tree: (p-1) messages of b² words. Gather: (p-1) blocks of rows·b.
  EXPECT_DOUBLE_EQ(words(true), (p - 1.0) * b * b);
  EXPECT_DOUBLE_EQ(words(false), (p - 1.0) * rows * b);
}

TEST(TsqrCosts, LogDepthMessages) {
  const int p = 16;
  const int b = 3;
  const int rows = 4;
  Rng rng(9);
  const auto A = random_matrix(rows * p, b, rng);
  const std::size_t lw = static_cast<std::size_t>(rows) * b;
  sim::Machine m(unit_config(p));
  std::vector<double> r(static_cast<std::size_t>(b) * b);
  m.run([&](sim::Comm& comm) {
    auto mine = std::span<const double>(A).subspan(
        lw * static_cast<std::size_t>(comm.rank()), lw);
    std::span<double> out =
        comm.rank() == 0 ? std::span<double>(r) : std::span<double>{};
    tsqr(comm, b, mine, out);
  });
  // Rank 0 receives log2(p) R factors and sends none.
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_recv, std::log2(p));
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 0.0);
}

}  // namespace
}  // namespace alge::algs
