// Cross-module invariants: properties that must hold for ANY simulated
// program on ANY machine parameters, checked on real algorithm runs.
#include <gtest/gtest.h>

#include <cmath>

#include "algs/harness.hpp"
#include "algs/nbody/nbody.hpp"
#include "core/algmodel.hpp"
#include "core/bounds.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace alge {
namespace {

core::MachineParams random_machine(Rng& rng) {
  core::MachineParams mp;
  mp.gamma_t = rng.uniform(0.1, 10.0);
  mp.beta_t = rng.uniform(0.1, 10.0);
  mp.alpha_t = rng.uniform(0.1, 100.0);
  mp.gamma_e = rng.uniform(0.1, 10.0);
  mp.beta_e = rng.uniform(0.1, 10.0);
  mp.alpha_e = rng.uniform(0.1, 100.0);
  mp.delta_e = rng.uniform(1e-6, 1e-3);
  mp.eps_e = rng.uniform(0.0, 0.1);
  mp.max_msg_words = std::floor(rng.uniform(8.0, 512.0));
  return mp;
}

class RandomMachines : public ::testing::TestWithParam<int> {};

TEST_P(RandomMachines, ClockDecomposesExactlyAsEq1PlusIdle) {
  // Per-rank invariant of the simulator: the final clock equals
  // γt·F + βt·W_sent + αt·(hop-weighted S) + idle. This is Eq. (1) with
  // waiting made explicit — and it must hold for every rank of every run.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const core::MachineParams mp = random_machine(rng);
  const auto r = algs::harness::run_mm25d(16, 2, 2, mp);
  (void)r;
  // Re-run at machine level to inspect per-rank counters.
  sim::MachineConfig cfg;
  cfg.p = 8;
  cfg.params = mp;
  sim::Machine m(cfg);
  m.run([&](sim::Comm& comm) {
    // A mixed workload: compute, collectives, point-to-point.
    comm.compute(100.0 * (comm.rank() + 1));
    std::vector<double> buf(33, 1.0);
    comm.allreduce_sum(buf, sim::Group::world(8));
    if (comm.rank() % 2 == 0) {
      comm.send((comm.rank() + 1) % 8, buf);
    } else {
      comm.recv((comm.rank() + 7) % 8, buf);
    }
    comm.barrier();
  });
  for (int rank = 0; rank < 8; ++rank) {
    const auto& c = m.rank_counters(rank);
    const double expect = mp.gamma_t * c.flops + mp.beta_t * c.words_sent +
                          mp.alpha_t * c.msgs_hops + c.idle_time;
    EXPECT_LT(rel_diff(c.clock, expect), 1e-12) << "rank " << rank;
  }
}

TEST_P(RandomMachines, WordsConservedAcrossTheNetwork) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const core::MachineParams mp = random_machine(rng);
  sim::MachineConfig cfg;
  cfg.p = 9;
  cfg.params = mp;
  sim::Machine m(cfg);
  m.run([&](sim::Comm& comm) {
    std::vector<double> buf(17, 1.0);
    std::vector<double> out(17 * 9);
    comm.allgather(buf, out, sim::Group::world(9));
    comm.allreduce_sum(buf, sim::Group::world(9));
  });
  double sent = 0.0;
  double received = 0.0;
  for (int r = 0; r < 9; ++r) {
    sent += m.rank_counters(r).words_sent;
    received += m.rank_counters(r).words_recv;
  }
  EXPECT_DOUBLE_EQ(sent, received);
}

TEST_P(RandomMachines, SimulatedMatmulEnergyTracksModelWithinBand) {
  // The end-to-end story: Eq. (2) evaluated on the measured run must stay
  // within a small constant of the analytic model across random machines
  // (collective log-factors and block constants are the gap).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
  const core::MachineParams mp = random_machine(rng);
  const int n = 32;
  const int q = 4;
  const int c = 2;
  const auto r = algs::harness::run_mm25d(n, q, c, mp);
  core::ClassicalMatmulModel model;
  const double p = static_cast<double>(q) * q * c;
  const double M = static_cast<double>(n) * n * c / p;
  const double e_model = model.energy(n, p, M, mp);
  const double ratio = r.energy.total() / e_model;
  EXPECT_GT(ratio, 0.5) << mp.to_string();
  EXPECT_LT(ratio, 12.0) << mp.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMachines, ::testing::Range(0, 10));

TEST(BoundsCheck, MeasuredTrafficAttainsLowerBounds) {
  // Communication optimality, asserted: measured W/rank within a small
  // constant of the Section-III lower bound, for every algorithm family.
  const core::MachineParams mp = core::MachineParams::unit();
  {
    const int n = 48;
    for (auto [q, c] : {std::pair{4, 1}, {4, 2}, {4, 4}}) {
      const double p = static_cast<double>(q) * q * c;
      const double M = 3.0 * n * n * c / p;
      const auto r = algs::harness::run_mm25d(n, q, c, mp);
      const double bound = core::bounds::matmul_words(n, p, M);
      const double ratio = r.words_per_proc() / bound;
      EXPECT_GT(ratio, 0.8) << "q=" << q << " c=" << c;
      EXPECT_LT(ratio, 16.0) << "q=" << q << " c=" << c;
    }
  }
  {
    const int n = 128;
    for (auto [p, c] : {std::pair{8, 1}, {16, 2}}) {
      const double M = static_cast<double>(n) * c / p;
      const auto r = algs::harness::run_nbody(n, p, c, mp);
      const double bound =
          core::bounds::nbody_words(n, p, M) * algs::kParticleWords;
      const double ratio = r.words_per_proc() / bound;
      EXPECT_GT(ratio, 0.5);
      EXPECT_LT(ratio, 16.0);
    }
  }
}

TEST(BoundsCheck, FormulasMatchHandValues) {
  // Eq. (3): max(I+O, F/sqrt(M)).
  EXPECT_DOUBLE_EQ(core::bounds::sequential_words(1000.0, 25.0, 10.0, 20.0),
                   200.0);
  EXPECT_DOUBLE_EQ(core::bounds::sequential_words(10.0, 25.0, 10.0, 20.0),
                   30.0);
  // Eq. (4) divides by m.
  EXPECT_DOUBLE_EQ(
      core::bounds::sequential_messages(1000.0, 25.0, 4.0, 0.0, 0.0), 50.0);
  // Eq. (5) clamps at zero.
  EXPECT_DOUBLE_EQ(core::bounds::parallel_words(10.0, 100.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(core::bounds::parallel_words(1000.0, 100.0, 50.0), 50.0);
  // Memory-independent floors kick in at the strong-scaling limit.
  const double n = 1024.0;
  const double M = 4096.0;
  const double p_limit = n * n * n / std::pow(M, 1.5);
  EXPECT_LT(
      rel_diff(core::bounds::matmul_words(n, p_limit, M),
               n * n / std::pow(p_limit, 2.0 / 3.0)),
      1e-9);
  EXPECT_THROW(core::bounds::matmul_words(0.0, 1.0, 1.0),
               invalid_argument_error);
}

TEST(RingBcast, DeliversAndSavesRootBandwidth) {
  const int p = 8;
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  const std::size_t k = 64;

  auto run = [&](bool ring) {
    sim::Machine m(cfg);
    std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
    m.run([&](sim::Comm& comm) {
      std::vector<double> data(k, 0.0);
      if (comm.rank() == 2) {
        for (std::size_t i = 0; i < k; ++i) data[i] = static_cast<double>(i);
      }
      if (ring) {
        comm.bcast_ring(data, 2, sim::Group::world(p));
      } else {
        comm.bcast(data, 2, sim::Group::world(p));
      }
      got[static_cast<std::size_t>(comm.rank())] = data;
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][10], 10.0)
          << "rank " << r;
    }
    return std::pair{m.rank_counters(2).words_sent,
                     m.totals().words_sent_max};
  };
  const auto [ring_root, ring_max] = run(true);
  const auto [tree_root, tree_max] = run(false);
  // Ring: the root (and every forwarder) sends exactly k words.
  EXPECT_DOUBLE_EQ(ring_root, static_cast<double>(k));
  EXPECT_DOUBLE_EQ(ring_max, static_cast<double>(k));
  // Binomial root sends log2(p) copies.
  EXPECT_DOUBLE_EQ(tree_root, k * std::log2(p));
}

TEST(RingBcast, WorksOnSubgroupsAndTinyPayloads) {
  sim::MachineConfig cfg;
  cfg.p = 7;
  cfg.params = core::MachineParams::unit();
  sim::Machine m(cfg);
  std::vector<double> results(7, -1.0);
  m.run([&](sim::Comm& comm) {
    if (comm.rank() < 2) return;  // group of 5
    sim::Group g = sim::Group::strided(2, 5, 1);
    std::vector<double> x = {comm.rank() == 4 ? 42.0 : 0.0};
    comm.bcast_ring(x, g.index_of(4), g, /*segments=*/3);
    results[static_cast<std::size_t>(comm.rank())] = x[0];
  });
  for (int r = 2; r < 7; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], 42.0);
  }
}

}  // namespace
}  // namespace alge
