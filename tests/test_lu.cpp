#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "algs/lu/distributed.hpp"
#include "algs/lu/local.hpp"
#include "algs/matmul/local.hpp"  // max_abs_diff
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::algs {
namespace {

sim::MachineConfig unit_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

/// Scatter the matrix into per-rank block-cyclic buffers.
std::vector<std::vector<double>> scatter_block_cyclic(
    const std::vector<double>& a, const BlockCyclic& bc) {
  const int q = bc.q;
  std::vector<std::vector<double>> local(
      static_cast<std::size_t>(q) * q,
      std::vector<double>(bc.local_words(), 0.0));
  for (int I = 0; I < bc.nt(); ++I) {
    for (int J = 0; J < bc.nt(); ++J) {
      auto& dst = local[static_cast<std::size_t>(I % q) * q + (J % q)];
      for (int r = 0; r < bc.nb; ++r) {
        for (int cidx = 0; cidx < bc.nb; ++cidx) {
          dst[bc.local_offset(I, J) + static_cast<std::size_t>(r) * bc.nb +
              cidx] = a[static_cast<std::size_t>(I * bc.nb + r) * bc.n +
                        (J * bc.nb + cidx)];
        }
      }
    }
  }
  return local;
}

std::vector<double> gather_block_cyclic(
    const std::vector<std::vector<double>>& local, const BlockCyclic& bc) {
  const int q = bc.q;
  std::vector<double> a(static_cast<std::size_t>(bc.n) * bc.n, 0.0);
  for (int I = 0; I < bc.nt(); ++I) {
    for (int J = 0; J < bc.nt(); ++J) {
      const auto& src = local[static_cast<std::size_t>(I % q) * q + (J % q)];
      for (int r = 0; r < bc.nb; ++r) {
        for (int cidx = 0; cidx < bc.nb; ++cidx) {
          a[static_cast<std::size_t>(I * bc.nb + r) * bc.n +
            (J * bc.nb + cidx)] =
              src[bc.local_offset(I, J) +
                  static_cast<std::size_t>(r) * bc.nb + cidx];
        }
      }
    }
  }
  return a;
}

TEST(LuLocal, FactorReconstructsMatrix) {
  Rng rng(3);
  for (int n : {1, 2, 5, 16, 33}) {
    const auto a = diagonally_dominant_matrix(n, rng);
    auto lu = a;
    lu_factor_inplace(lu, n);
    EXPECT_LT(max_abs_diff(lu_reconstruct(lu, n), a), 1e-9 * n) << n;
  }
}

TEST(LuLocal, TrsmLowerLeftSolves) {
  Rng rng(5);
  const int n = 12;
  const auto a = diagonally_dominant_matrix(n, rng);
  auto lu = a;
  lu_factor_inplace(lu, n);
  const auto b = random_matrix(n, n, rng);
  auto x = b;
  trsm_lower_left(lu, x, n);
  // L·X must equal B (L unit lower from lu).
  std::vector<double> lx(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k <= i; ++k) {
      const double lik = k == i ? 1.0 : lu[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j) {
        lx[static_cast<std::size_t>(i) * n + j] +=
            lik * x[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
  EXPECT_LT(max_abs_diff(lx, b), 1e-10);
}

TEST(LuLocal, TrsmUpperRightSolves) {
  Rng rng(6);
  const int n = 12;
  const auto a = diagonally_dominant_matrix(n, rng);
  auto lu = a;
  lu_factor_inplace(lu, n);
  const auto b = random_matrix(n, n, rng);
  auto x = b;
  trsm_upper_right(lu, x, n);
  // X·U must equal B.
  std::vector<double> xu(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      const double xik = x[static_cast<std::size_t>(i) * n + k];
      for (int j = k; j < n; ++j) {
        xu[static_cast<std::size_t>(i) * n + j] +=
            xik * lu[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
  EXPECT_LT(max_abs_diff(xu, b), 1e-10);
}

TEST(LuLocal, ZeroPivotRejected) {
  std::vector<double> a = {0.0, 1.0, 1.0, 0.0};
  EXPECT_THROW(lu_factor_inplace(a, 2), invalid_argument_error);
}

class Lu2DRuns : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Lu2DRuns, MatchesSerialFactorization) {
  const auto [q, nb, nt_per] = GetParam();
  const int n = nb * q * nt_per;
  BlockCyclic bc{n, nb, q};
  topo::Grid2D grid(q);
  Rng rng(91);
  const auto A = diagonally_dominant_matrix(n, rng);
  auto serial = A;
  lu_factor_inplace(serial, n);

  auto local = scatter_block_cyclic(A, bc);
  sim::Machine m(unit_config(grid.p()));
  m.run([&](sim::Comm& comm) {
    lu_2d(comm, grid, bc, local[static_cast<std::size_t>(comm.rank())]);
  });
  const auto dist = gather_block_cyclic(local, bc);
  EXPECT_LT(max_abs_diff(dist, serial), 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(GridsAndSizes, Lu2DRuns,
                         ::testing::Values(std::tuple{1, 4, 2},
                                           std::tuple{2, 2, 1},
                                           std::tuple{2, 4, 2},
                                           std::tuple{3, 3, 2},
                                           std::tuple{4, 4, 2}));

class Lu25DRuns
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Lu25DRuns, MatchesSerialFactorization) {
  const auto [q, c, nb, nt_per] = GetParam();
  const int n = nb * q * nt_per;
  BlockCyclic bc{n, nb, q};
  topo::Grid3D grid(q, c);
  Rng rng(92);
  const auto A = diagonally_dominant_matrix(n, rng);
  auto serial = A;
  lu_factor_inplace(serial, n);

  auto local = scatter_block_cyclic(A, bc);  // layer-0 layout
  sim::Machine m(unit_config(grid.p()));
  m.run([&](sim::Comm& comm) {
    const int l = grid.layer_of(comm.rank());
    if (l == 0) {
      const int r = grid.row_of(comm.rank());
      const int cc = grid.col_of(comm.rank());
      lu_25d(comm, grid, bc, local[static_cast<std::size_t>(r) * q + cc]);
    } else {
      lu_25d(comm, grid, bc, {});
    }
  });
  const auto dist = gather_block_cyclic(local, bc);
  EXPECT_LT(max_abs_diff(dist, serial), 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(GridsAndSizes, Lu25DRuns,
                         ::testing::Values(std::tuple{2, 1, 4, 2},
                                           std::tuple{2, 2, 2, 2},
                                           std::tuple{2, 2, 4, 2},
                                           std::tuple{3, 2, 3, 2},
                                           std::tuple{4, 2, 2, 2},
                                           std::tuple{2, 4, 2, 4}));

TEST(LuCosts, LatencyGrowsWithReplication) {
  // Section IV: unlike matmul, 2.5D LU's critical-path message count does
  // not shrink with replication — the per-panel synchronization adds
  // depth-broadcast rounds, so S grows with c.
  auto msgs = [&](int q, int c, int nb, int nt_per) {
    const int n = nb * q * nt_per;
    BlockCyclic bc{n, nb, q};
    topo::Grid3D grid(q, c);
    Rng rng(17);
    const auto A = diagonally_dominant_matrix(n, rng);
    auto local = scatter_block_cyclic(A, bc);
    sim::Machine m(unit_config(grid.p()));
    m.run([&](sim::Comm& comm) {
      const int l = grid.layer_of(comm.rank());
      if (l == 0) {
        const int r = grid.row_of(comm.rank());
        const int cc = grid.col_of(comm.rank());
        lu_25d(comm, grid, bc, local[static_cast<std::size_t>(r) * q + cc]);
      } else {
        lu_25d(comm, grid, bc, {});
      }
    });
    return m.totals().msgs_sent_max;
  };
  // Replication must NOT buy the c-fold drop in per-rank messages that it
  // buys matmul (cf. MatmulCosts.ReplicationCutsPerRankBandwidth): the
  // per-panel critical path keeps S pinned near its 2D value.
  const double s_c1 = msgs(2, 1, 2, 4);
  const double s_c2 = msgs(2, 2, 2, 4);
  const double s_c4 = msgs(2, 4, 2, 4);
  EXPECT_GE(s_c2, s_c1 * 0.9);
  EXPECT_GE(s_c4, s_c1 * 0.75);
}

TEST(LuCosts, MoreBlocksMoreMessages) {
  // S grows with the panel count nt = n/nb (the critical path), matching
  // S = Θ(√(cp)) when nb is chosen as n/√(cp).
  auto msgs = [&](int nb, int nt_per) {
    const int q = 2;
    const int n = nb * q * nt_per;
    BlockCyclic bc{n, nb, q};
    topo::Grid2D grid(q);
    Rng rng(19);
    const auto A = diagonally_dominant_matrix(n, rng);
    auto local = scatter_block_cyclic(A, bc);
    sim::Machine m(unit_config(grid.p()));
    m.run([&](sim::Comm& comm) {
      lu_2d(comm, grid, bc, local[static_cast<std::size_t>(comm.rank())]);
    });
    return m.totals().msgs_sent_max;
  };
  // Same n = 16: fine blocks mean more panels and more messages.
  EXPECT_GT(msgs(2, 4), msgs(4, 2));
  EXPECT_GT(msgs(4, 2), msgs(8, 1));
}

TEST(LuRejects, BadBlocking) {
  BlockCyclic bc{10, 3, 2};
  EXPECT_THROW(bc.validate(), invalid_argument_error);
  BlockCyclic bc2{12, 2, 4};  // nt=6 not divisible by q=4
  EXPECT_THROW(bc2.validate(), invalid_argument_error);
}

}  // namespace
}  // namespace alge::algs
