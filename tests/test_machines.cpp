// The machine DB must reproduce the derived columns of Table II and the
// published parameters of Table I.
#include <gtest/gtest.h>

#include "machines/db.hpp"
#include "support/stats.hpp"

namespace alge::machines {
namespace {

struct Table2Expected {
  const char* name;
  double peak_gflops;
  double gamma_t;
  double gamma_e;
  double gflops_per_watt;
};

// Values exactly as printed in Table II of the paper.
const Table2Expected kExpected[] = {
    {"Intel Sandy Bridge 2687W", 396.80, 2.52e-12, 3.78e-10, 2.645},
    {"Intel Ivy Bridge 3770K", 307.20, 3.26e-12, 2.51e-10, 3.990},
    {"Intel Ivy Bridge 3770T", 243.20, 4.11e-12, 1.85e-10, 5.404},
    {"Intel Westmere-EX E7-8870", 192.00, 5.21e-12, 6.77e-10, 1.477},
    {"Intel Beckton X7560", 144.64, 6.91e-12, 8.99e-10, 1.113},
    {"Intel Atom D2500", 29.76, 3.36e-11, 3.36e-10, 2.976},
    {"Intel Atom N2800", 29.76, 3.36e-11, 2.18e-10, 4.578},
    {"Nvidia GTX480", 1344.96, 7.44e-13, 1.86e-10, 5.380},
    {"Nvidia GTX590", 2488.32, 4.02e-13, 1.47e-10, 6.817},
    {"ARM Cortex A9 (2GHz)", 8.00, 1.25e-10, 2.38e-10, 4.211},
    {"ARM Cortex A9 (0.8GHz)", 3.20, 3.13e-10, 1.56e-10, 6.400},
};

TEST(Table2, HasElevenProcessors) {
  EXPECT_EQ(table2_processors().size(), 11u);
}

class Table2Rows : public ::testing::TestWithParam<int> {};

TEST_P(Table2Rows, DerivedColumnsMatchPaper) {
  const auto& rows = table2_processors();
  const int i = GetParam();
  const ProcessorSpec& spec = rows[static_cast<std::size_t>(i)];
  const Table2Expected& want = kExpected[i];
  EXPECT_EQ(spec.name, want.name);
  // Peak FP is printed to 2 decimals in the paper.
  EXPECT_LT(alge::rel_diff(spec.peak_gflops(), want.peak_gflops), 1e-4)
      << spec.name;
  // γt/γe/GFLOPS-per-W are printed to 3 significant digits.
  EXPECT_LT(alge::rel_diff(spec.gamma_t(), want.gamma_t), 5e-3) << spec.name;
  EXPECT_LT(alge::rel_diff(spec.gamma_e(), want.gamma_e), 5e-3) << spec.name;
  EXPECT_LT(alge::rel_diff(spec.gflops_per_watt(), want.gflops_per_watt),
            5e-3)
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table2Rows, ::testing::Range(0, 11));

TEST(Table2, NoDeviceReachesTenGflopsPerWatt) {
  // Section VII's observation.
  for (const auto& spec : table2_processors()) {
    EXPECT_LT(spec.gflops_per_watt(), 10.0) << spec.name;
  }
}

TEST(Table2, TwoPolesOfEfficiency) {
  // Section VII: both the high-power GPUs and the low-power ARM/Atom parts
  // beat the mid-range server chips on GFLOPS/W.
  const auto& rows = table2_processors();
  auto eff = [&](const char* name) {
    for (const auto& r : rows) {
      if (r.name == name) return r.gflops_per_watt();
    }
    ADD_FAILURE() << "missing " << name;
    return 0.0;
  };
  const double westmere = eff("Intel Westmere-EX E7-8870");
  EXPECT_GT(eff("Nvidia GTX590"), westmere * 3.0);
  EXPECT_GT(eff("ARM Cortex A9 (0.8GHz)"), westmere * 3.0);
}

TEST(CaseStudy, PublishedParametersOfTableI) {
  const CaseStudyMachine jaketown;
  const core::MachineParams mp = jaketown.params();
  EXPECT_DOUBLE_EQ(mp.gamma_e, 3.78024e-10);
  EXPECT_DOUBLE_EQ(mp.beta_e, 3.78024e-10);
  EXPECT_DOUBLE_EQ(mp.alpha_e, 0.0);
  EXPECT_DOUBLE_EQ(mp.delta_e, 5.7742e-9);
  EXPECT_DOUBLE_EQ(mp.eps_e, 0.0);
  EXPECT_DOUBLE_EQ(mp.gamma_t, 2.5202e-12);
  EXPECT_DOUBLE_EQ(mp.beta_t, 1.56e-10);
  EXPECT_DOUBLE_EQ(mp.alpha_t, 6.00e-8);
  EXPECT_DOUBLE_EQ(mp.mem_words, 17179869184.0);
  EXPECT_DOUBLE_EQ(mp.max_msg_words, 17179869184.0);
  EXPECT_NO_THROW(mp.validate());
}

TEST(CaseStudy, DerivationsReproducePublishedValues) {
  const CaseStudyMachine jaketown;
  // γt = 1/peak and γe = TDP/peak round to the published values.
  EXPECT_LT(alge::rel_diff(jaketown.derived_gamma_t(), 2.5202e-12), 1e-4);
  EXPECT_LT(alge::rel_diff(jaketown.derived_gamma_e(), 3.78024e-10), 1e-4);
  // βt = 4 bytes / 25.6 GB/s = 1.5625e-10, printed as 1.56e-10.
  EXPECT_LT(alge::rel_diff(jaketown.derived_beta_t(), 1.56e-10), 2e-3);
  // δe reproduces the published value under the paper's byte/word divisor.
  EXPECT_LT(alge::rel_diff(jaketown.derived_delta_e(), 5.7742e-9), 1e-3);
}

TEST(CaseStudy, DerivedBetaEDiffersFromPublished) {
  // The published βe equals γe exactly; the stated derivation (βt times
  // link power) gives a different number. Both facts are recorded here so a
  // regression in either direction is caught; EXPERIMENTS.md discusses it.
  const CaseStudyMachine jaketown;
  const double derived = jaketown.derived_beta_e();
  EXPECT_LT(alge::rel_diff(derived, 1.5625e-10 * 2.15), 1e-9);
  EXPECT_GT(alge::rel_diff(derived, jaketown.params().beta_e), 0.1);
}

TEST(CaseStudy, TwoLevelViewIsConsistent) {
  const CaseStudyMachine jaketown;
  const core::TwoLevelParams tp = jaketown.two_level();
  EXPECT_NO_THROW(tp.validate());
  EXPECT_DOUBLE_EQ(tp.p_total(), 16.0);
  EXPECT_GT(tp.beta_t_node, tp.beta_t_core);
  // Two-level runtime must exceed the pure-compute floor.
  const double n = 4096.0;
  const double t = core::twolevel_mm_time(n, tp);
  EXPECT_GT(t, tp.gamma_t * n * n * n / tp.p_total() * 0.999);
}

}  // namespace
}  // namespace alge::machines
