// Property tests: the paper's closed-form expressions (Eqs. 9–16, 18) must
// agree with the generic Eq.(1)/(2) evaluation of each AlgModel, energy must
// be independent of p inside the strong-scaling region, and M0 must be the
// energy minimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/algmodel.hpp"
#include "core/closed_forms.hpp"
#include "core/params.hpp"
#include "core/scaling.hpp"
#include "core/twolevel.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace alge::core {
namespace {

/// Random but well-conditioned machine parameters.
MachineParams random_params(Rng& rng, bool with_latency = true) {
  MachineParams mp;
  mp.gamma_t = rng.uniform(1e-12, 1e-9);
  mp.beta_t = rng.uniform(1e-11, 1e-8);
  mp.alpha_t = with_latency ? rng.uniform(1e-8, 1e-5) : 0.0;
  mp.gamma_e = rng.uniform(1e-11, 1e-8);
  mp.beta_e = rng.uniform(1e-10, 1e-7);
  mp.alpha_e = with_latency ? rng.uniform(1e-8, 1e-5) : 0.0;
  mp.delta_e = rng.uniform(1e-10, 1e-7);
  mp.eps_e = rng.uniform(0.0, 1e-2);
  mp.max_msg_words = rng.uniform(64.0, 1e6);
  return mp;
}

class ClosedFormAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormAgreement, ClassicalMatmulTimeAndEnergy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const MachineParams mp = random_params(rng);
  ClassicalMatmulModel model;
  const double n = rng.uniform(1e3, 1e5);
  const double p = rng.uniform(4.0, 1e5);
  // M anywhere in the valid replication range.
  const double lo = model.min_memory(n, p);
  const double hi = model.max_useful_memory(n, p);
  const double M = lo * std::pow(hi / lo, rng.next_double());
  EXPECT_LT(rel_diff(model.time(n, p, M, mp), closed::mm25d_time(n, p, M, mp)),
            1e-12);
  EXPECT_LT(rel_diff(model.energy(n, p, M, mp), closed::mm25d_energy(n, M, mp)),
            1e-12);
}

TEST_P(ClosedFormAgreement, Matmul3DLimit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const MachineParams mp = random_params(rng);
  ClassicalMatmulModel model;
  const double n = rng.uniform(1e3, 1e5);
  const double p = rng.uniform(8.0, 1e6);
  const double M = model.max_useful_memory(n, p);
  EXPECT_LT(rel_diff(model.energy(n, p, M, mp), closed::mm3d_energy(n, p, mp)),
            1e-10);
}

TEST_P(ClosedFormAgreement, StrassenLimitedAndUnlimited) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const MachineParams mp = random_params(rng);
  StrassenModel model;
  const double w0 = model.omega();
  const double n = rng.uniform(1e3, 1e5);
  const double p = rng.uniform(4.0, 1e5);
  const double lo = model.min_memory(n, p);
  const double hi = model.max_useful_memory(n, p);
  const double M = lo * std::pow(hi / lo, rng.next_double());
  EXPECT_LT(rel_diff(model.energy(n, p, M, mp),
                     closed::strassen_energy(n, M, w0, mp)),
            1e-10);
  EXPECT_LT(rel_diff(model.energy(n, p, hi, mp),
                     closed::strassen_energy_unlimited(n, p, w0, mp)),
            1e-10);
}

TEST_P(ClosedFormAgreement, NBodyTimeAndEnergy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const MachineParams mp = random_params(rng);
  const double f = rng.uniform(5.0, 50.0);
  NBodyModel model(f);
  const double n = rng.uniform(1e4, 1e8);
  const double p = rng.uniform(4.0, 1e4);
  const double lo = model.min_memory(n, p);
  const double hi = model.max_useful_memory(n, p);
  const double M = lo * std::pow(hi / lo, rng.next_double());
  EXPECT_LT(
      rel_diff(model.time(n, p, M, mp), closed::nbody_time(n, p, M, f, mp)),
      1e-12);
  EXPECT_LT(
      rel_diff(model.energy(n, p, M, mp), closed::nbody_energy(n, M, f, mp)),
      1e-12);
}

TEST_P(ClosedFormAgreement, FftTreeTimeAndEnergy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const MachineParams mp = random_params(rng);
  FftModel model(FftModel::AllToAll::kTree);
  const double n = std::pow(2.0, std::floor(rng.uniform(16.0, 30.0)));
  const double p = std::pow(2.0, std::floor(rng.uniform(1.0, 10.0)));
  const double M = n / p;
  EXPECT_LT(rel_diff(model.time(n, p, M, mp), closed::fft_time(n, p, mp)),
            1e-12);
  EXPECT_LT(rel_diff(model.energy(n, p, M, mp), closed::fft_energy(n, p, mp)),
            1e-12);
}

TEST_P(ClosedFormAgreement, EnergyIndependentOfPInScalingRange) {
  // The paper's headline: same M, more processors, same energy.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const MachineParams mp = random_params(rng);
  ClassicalMatmulModel mm;
  NBodyModel nb(10.0);
  StrassenModel st;
  const double n = 65536.0;

  for (const AlgModel* model :
       {static_cast<const AlgModel*>(&mm), static_cast<const AlgModel*>(&st),
        static_cast<const AlgModel*>(&nb)}) {
    const double M = model->min_memory(n, 64.0);  // fits at p >= 64
    const double p_lo = model->p_min(n, M);
    const double p_hi = model->p_max(n, M);
    ASSERT_GT(p_hi, p_lo * 2.0);
    const double p1 = p_lo * std::pow(p_hi / p_lo, rng.next_double());
    const double p2 = p_lo * std::pow(p_hi / p_lo, rng.next_double());
    EXPECT_LT(rel_diff(model->energy(n, p1, M, mp),
                       model->energy(n, p2, M, mp)),
              1e-12)
        << model->name();
    // ... while time scales exactly as 1/p:
    EXPECT_LT(rel_diff(model->time(n, p1, M, mp) * p1,
                       model->time(n, p2, M, mp) * p2),
              1e-12)
        << model->name();
  }
}

TEST_P(ClosedFormAgreement, M0MinimizesNBodyEnergy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  const MachineParams mp = random_params(rng);
  const double f = rng.uniform(2.0, 30.0);
  const double M0 = closed::nbody_M0(f, mp);
  const double n = M0 * 1e3;  // keep M0 well inside the valid range
  const double e0 = closed::nbody_energy(n, M0, f, mp);
  EXPECT_LT(rel_diff(e0, closed::nbody_min_energy(n, f, mp)), 1e-12);
  for (double fac : {0.5, 0.9, 1.1, 2.0}) {
    EXPECT_GE(closed::nbody_energy(n, M0 * fac, f, mp), e0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormAgreement, ::testing::Range(0, 20));

TEST(Params, UnitValidates) {
  EXPECT_NO_THROW(MachineParams::unit().validate());
}

TEST(Params, RejectsNegativeAndNonFinite) {
  MachineParams mp = MachineParams::unit();
  mp.beta_t = -1.0;
  EXPECT_THROW(mp.validate(), invalid_argument_error);
  mp = MachineParams::unit();
  mp.gamma_e = std::nan("");
  EXPECT_THROW(mp.validate(), invalid_argument_error);
  mp = MachineParams::unit();
  mp.max_msg_words = 0.5;
  EXPECT_THROW(mp.validate(), invalid_argument_error);
}

TEST(Costs, Eq1AndEq2Direct) {
  MachineParams mp;
  mp.gamma_t = 2.0;
  mp.beta_t = 3.0;
  mp.alpha_t = 5.0;
  mp.gamma_e = 7.0;
  mp.beta_e = 11.0;
  mp.alpha_e = 13.0;
  mp.delta_e = 0.1;
  mp.eps_e = 0.01;
  const Costs c{100.0, 10.0, 2.0};
  const double T = time_of(c, mp);
  EXPECT_DOUBLE_EQ(T, 2.0 * 100 + 3.0 * 10 + 5.0 * 2);
  const double E = energy_of(c, 4.0, 50.0, T, mp);
  EXPECT_DOUBLE_EQ(E, 4.0 * (7.0 * 100 + 11.0 * 10 + 13.0 * 2 +
                             0.1 * 50.0 * T + 0.01 * T));
  const EnergyBreakdown b = energy_breakdown(c, 4.0, 50.0, T, mp);
  EXPECT_DOUBLE_EQ(b.total(), E);
  EXPECT_DOUBLE_EQ(b.flops, 4.0 * 7.0 * 100);
}

TEST(AlgModels, MemoryRangesAreOrdered) {
  ClassicalMatmulModel mm;
  StrassenModel st;
  NBodyModel nb(8.0);
  LuModel lu;
  const double n = 4096.0;
  for (double p : {4.0, 64.0, 4096.0}) {
    for (const AlgModel* m :
         {static_cast<const AlgModel*>(&mm), static_cast<const AlgModel*>(&st),
          static_cast<const AlgModel*>(&nb),
          static_cast<const AlgModel*>(&lu)}) {
      EXPECT_LE(m->min_memory(n, p), m->max_useful_memory(n, p))
          << m->name() << " p=" << p;
    }
  }
}

TEST(AlgModels, ScalingRangeEndpointsConsistent) {
  // p_min(n, M) and p_max(n, M) invert the memory range formulas.
  ClassicalMatmulModel mm;
  const double n = 10000.0;
  const double p = 100.0;
  const double M = mm.min_memory(n, p);  // 2D memory at p
  EXPECT_LT(rel_diff(mm.p_min(n, M), p), 1e-12);
  EXPECT_LT(rel_diff(mm.p_max(n, M), std::pow(p, 1.5)), 1e-12);
  NBodyModel nb(1.0);
  const double Mn = nb.min_memory(n, p);
  EXPECT_LT(rel_diff(nb.p_min(n, Mn), p), 1e-12);
  EXPECT_LT(rel_diff(nb.p_max(n, Mn), p * p), 1e-12);
}

TEST(AlgModels, StrassenReducesTowardClassicalAtOmega3) {
  StrassenModel nearly3(2.999999);
  ClassicalMatmulModel classical;
  const MachineParams mp = MachineParams::unit();
  const double n = 1024.0;
  const double p = 64.0;
  const double M = n * n / p;
  EXPECT_LT(rel_diff(nearly3.energy(n, p, M, mp),
                     classical.energy(n, p, M, mp)),
            1e-3);
}

TEST(AlgModels, RequiresFittingMemory) {
  ClassicalMatmulModel mm;
  const MachineParams mp = MachineParams::unit();
  EXPECT_THROW(mm.costs(1000.0, 4.0, /*M too small=*/100.0, mp.max_msg_words),
               invalid_argument_error);
}

TEST(AlgModels, ExtraMemoryBeyond3DLimitDoesNotReduceW) {
  ClassicalMatmulModel mm;
  const double n = 4096.0;
  const double p = 64.0;
  const double cap = mm.max_useful_memory(n, p);
  const Costs at_cap = mm.costs(n, p, cap, 1e18);
  const Costs beyond = mm.costs(n, p, cap * 100.0, 1e18);
  EXPECT_DOUBLE_EQ(at_cap.W, beyond.W);
}

TEST(AlgModels, LuLatencyGrowsWithP) {
  LuModel lu;
  const double n = 8192.0;
  const double M = 4096.0;  // fixed per-processor memory
  const double p1 = lu.p_min(n, M);
  const Costs c1 = lu.costs(n, p1, M, 1e18);
  const Costs c2 = lu.costs(n, 4.0 * p1, M, 1e18);
  // Bandwidth strong-scales...
  EXPECT_LT(rel_diff(c2.W, c1.W / 4.0), 1e-12);
  // ...but latency grows with p: S = p·sqrt(M)/n.
  EXPECT_LT(rel_diff(c2.S, 4.0 * c1.S), 1e-12);
}

TEST(AlgModels, FftNaiveVsTreeTradeoff) {
  FftModel naive(FftModel::AllToAll::kNaive);
  FftModel tree(FftModel::AllToAll::kTree);
  const double n = 1 << 20;
  const double p = 256.0;
  const Costs cn = naive.costs(n, p, n / p, 1e18);
  const Costs ct = tree.costs(n, p, n / p, 1e18);
  EXPECT_LT(ct.S, cn.S);
  EXPECT_GT(ct.W, cn.W);
  EXPECT_DOUBLE_EQ(cn.S, p);
  EXPECT_DOUBLE_EQ(ct.S, std::log2(p));
}

TEST(AlgModels, FftSingleProcessorHasNoComm) {
  FftModel naive(FftModel::AllToAll::kNaive);
  const Costs c = naive.costs(1 << 16, 1.0, 1 << 16, 1e18);
  EXPECT_DOUBLE_EQ(c.W, 0.0);
  EXPECT_DOUBLE_EQ(c.S, 0.0);
}

TEST(ScalingSeries, FlatThenRising) {
  // Figure 3's shape: W·p constant inside the region, rising past p_max.
  ClassicalMatmulModel mm;
  const MachineParams mp = MachineParams::unit();
  const double n = 1 << 16;
  const double M = 1 << 22;
  const auto series = strong_scaling_series(mm, n, M, mp, 64.0, 65);
  ASSERT_GT(series.size(), 10u);
  double flat_ref = -1.0;
  double last_beyond = -1.0;
  int beyond_count = 0;
  for (const auto& pt : series) {
    if (pt.in_scaling_range) {
      if (flat_ref < 0.0) flat_ref = pt.W_times_p;
      EXPECT_LT(rel_diff(pt.W_times_p, flat_ref), 1e-9);
    } else if (pt.p > mm.p_max(n, M)) {
      if (last_beyond > 0.0) {
        EXPECT_GT(pt.W_times_p, last_beyond);
      }
      last_beyond = pt.W_times_p;
      ++beyond_count;
    }
  }
  EXPECT_GT(beyond_count, 3);
  // Past the limit the growth rate is p^(1/3) for classical matmul.
  const auto& a = series[series.size() - 5];
  const auto& b = series.back();
  const double slope = std::log(b.W_times_p / a.W_times_p) /
                       std::log(b.p / a.p);
  EXPECT_NEAR(slope, 1.0 / 3.0, 0.02);
}

TEST(ScalingSeries, StrassenRisesSlowerThanClassical) {
  // Figure 3 shows the Strassen-like curve turning up earlier but with a
  // shallower slope 1 - 2/ω0 < 1/3... (for W·p the classical slope is 1/3,
  // the Strassen slope is 1 - 2/ω0 ≈ 0.2876).
  StrassenModel st;
  const MachineParams mp = MachineParams::unit();
  const double n = 1 << 16;
  const double M = 1 << 22;
  const auto series = strong_scaling_series(st, n, M, mp, 64.0, 65);
  const auto& a = series[series.size() - 5];
  const auto& b = series.back();
  const double slope = std::log(b.W_times_p / a.W_times_p) /
                       std::log(b.p / a.p);
  EXPECT_NEAR(slope, 1.0 - 2.0 / st.omega(), 0.02);
  // Strassen's scaling range ends earlier: p_max smaller than classical's.
  ClassicalMatmulModel mm;
  EXPECT_LT(st.p_max(n, M), mm.p_max(n, M));
}

TEST(TwoLevel, ReducesToGammaTermWhenCommFree) {
  TwoLevelParams tp;
  tp.p_nodes = 4;
  tp.p_cores = 8;
  tp.mem_node = 1e6;
  tp.mem_core = 1e4;
  tp.gamma_t = 1e-9;
  tp.beta_t_node = tp.beta_t_core = 0.0;
  tp.alpha_t_node = tp.alpha_t_core = 0.0;
  const double n = 512.0;
  EXPECT_LT(rel_diff(twolevel_mm_time(n, tp), 1e-9 * n * n * n / 32.0),
            1e-12);
  EXPECT_LT(rel_diff(twolevel_nbody_time(n, 10.0, tp),
                     1e-9 * 10.0 * n * n / 32.0),
            1e-12);
}

TEST(TwoLevel, EnergyGrowsWithLeakage) {
  TwoLevelParams tp;
  tp.p_nodes = 2;
  tp.p_cores = 4;
  tp.mem_node = 1e6;
  tp.mem_core = 1e4;
  const double base = twolevel_mm_energy(256.0, tp);
  tp.eps_e *= 10.0;
  EXPECT_GT(twolevel_mm_energy(256.0, tp), base);
}

TEST(TwoLevel, FasterIntraNodeLinkReducesTime) {
  TwoLevelParams tp;
  tp.p_nodes = 2;
  tp.p_cores = 8;
  tp.mem_node = 1 << 20;
  tp.mem_core = 1 << 12;
  const double slow = twolevel_mm_time(1024.0, tp);
  tp.beta_t_core /= 8.0;
  EXPECT_LT(twolevel_mm_time(1024.0, tp), slow);
}

TEST(TwoLevel, ValidationRejectsBadStructure) {
  TwoLevelParams tp;
  tp.p_nodes = 0;
  EXPECT_THROW(tp.validate(), invalid_argument_error);
  tp = TwoLevelParams{};
  tp.mem_core = 0.0;
  EXPECT_THROW(tp.validate(), invalid_argument_error);
}

}  // namespace
}  // namespace alge::core
