#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fiber/fiber.hpp"
#include "support/common.hpp"

namespace alge::fiber {
namespace {

TEST(Fiber, RunsToCompletion) {
  Scheduler s;
  int ran = 0;
  s.spawn([&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.live_count(), 0u);
}

TEST(Fiber, RoundRobinInterleavesYields) {
  Scheduler s;
  std::string order;
  s.spawn([&] {
    order += 'a';
    Scheduler::active()->yield();
    order += 'A';
  });
  s.spawn([&] {
    order += 'b';
    Scheduler::active()->yield();
    order += 'B';
  });
  s.run();
  EXPECT_EQ(order, "abAB");
}

TEST(Fiber, BlockUnblock) {
  Scheduler s;
  std::vector<int> events;
  Scheduler::FiberId waiter = s.spawn([&] {
    events.push_back(1);
    Scheduler::active()->block("waiting for go");
    events.push_back(3);
  });
  s.spawn([&] {
    events.push_back(2);
    Scheduler::active()->unblock(waiter);
  });
  s.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], 1);
  EXPECT_EQ(events[1], 2);
  EXPECT_EQ(events[2], 3);
}

TEST(Fiber, DeadlockDetectedWithReasons) {
  Scheduler s;
  s.spawn([] { Scheduler::active()->block("rank 0 waiting for rank 1"); });
  s.spawn([] { Scheduler::active()->block("rank 1 waiting for rank 0"); });
  try {
    s.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0 waiting for rank 1"), std::string::npos);
    EXPECT_NE(msg.find("rank 1 waiting for rank 0"), std::string::npos);
  }
}

TEST(Fiber, ExceptionPropagatesAndOthersUnwind) {
  Scheduler s;
  bool other_destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  s.spawn([&] {
    Sentinel guard{&other_destroyed};
    Scheduler::active()->block("never woken");
    FAIL() << "must not resume normally";
  });
  s.spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_TRUE(other_destroyed) << "blocked fiber stack must be unwound";
}

TEST(Fiber, CancellationIsNotAnError) {
  // A fiber that exits via FiberCancelled counts as finished, not failed.
  Scheduler s;
  s.spawn([&] { Scheduler::active()->block("forever"); });
  s.spawn([] { throw std::logic_error("primary"); });
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Fiber, ManyFibersDeepInterleaving) {
  Scheduler s;
  constexpr int kN = 100;
  constexpr int kYields = 25;
  std::vector<int> progress(kN, 0);
  for (int i = 0; i < kN; ++i) {
    s.spawn([&, i] {
      for (int k = 0; k < kYields; ++k) {
        ++progress[static_cast<std::size_t>(i)];
        Scheduler::active()->yield();
      }
    });
  }
  s.run();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(progress[static_cast<std::size_t>(i)], kYields);
}

TEST(Fiber, SpawnValidatesArguments) {
  Scheduler s;
  EXPECT_THROW(s.spawn(nullptr), invalid_argument_error);
  EXPECT_THROW(s.spawn([] {}, 1024), invalid_argument_error);
}

TEST(Fiber, NestedFunctionCallsCanBlock) {
  // Blocking works deep in a call stack, which is what the simulator relies
  // on (recv inside collectives inside algorithms).
  Scheduler s;
  Scheduler::FiberId waiter = -1;
  int depth_reached = 0;
  std::function<void(int)> deep = [&](int d) {
    if (d == 0) {
      Scheduler::active()->block("deep block");
      depth_reached = 42;
      return;
    }
    deep(d - 1);
  };
  waiter = s.spawn([&] { deep(20); });
  s.spawn([&] { Scheduler::active()->unblock(waiter); });
  s.run();
  EXPECT_EQ(depth_reached, 42);
}

TEST(Fiber, CurrentIdMatchesSpawnOrder) {
  Scheduler s;
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    s.spawn([&] { ids.push_back(Scheduler::active()->current()); });
  }
  s.run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 1);
  EXPECT_EQ(ids[2], 2);
}

TEST(Fiber, DestructorUnwindsUnfinishedFibers) {
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Scheduler s;
    s.spawn([&] {
      Sentinel guard{&destroyed};
      Scheduler::active()->block("never");
    });
    // run() never called for the blocked fiber to finish; give it a start:
    s.spawn([] {});
    try {
      s.run();
    } catch (const DeadlockError&) {
      // expected
    }
  }
  EXPECT_TRUE(destroyed);
}

}  // namespace
}  // namespace alge::fiber
