#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fiber/fiber.hpp"
#include "fiber/ready_set.hpp"
#include "support/common.hpp"

namespace alge::fiber {
namespace {

TEST(Fiber, RunsToCompletion) {
  Scheduler s;
  int ran = 0;
  s.spawn([&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.live_count(), 0u);
}

TEST(Fiber, RoundRobinInterleavesYields) {
  Scheduler s;
  std::string order;
  s.spawn([&] {
    order += 'a';
    Scheduler::active()->yield();
    order += 'A';
  });
  s.spawn([&] {
    order += 'b';
    Scheduler::active()->yield();
    order += 'B';
  });
  s.run();
  EXPECT_EQ(order, "abAB");
}

TEST(Fiber, BlockUnblock) {
  Scheduler s;
  std::vector<int> events;
  Scheduler::FiberId waiter = s.spawn([&] {
    events.push_back(1);
    Scheduler::active()->block("waiting for go");
    events.push_back(3);
  });
  s.spawn([&] {
    events.push_back(2);
    Scheduler::active()->unblock(waiter);
  });
  s.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], 1);
  EXPECT_EQ(events[1], 2);
  EXPECT_EQ(events[2], 3);
}

TEST(Fiber, DeadlockDetectedWithReasons) {
  Scheduler s;
  s.spawn([] { Scheduler::active()->block("rank 0 waiting for rank 1"); });
  s.spawn([] { Scheduler::active()->block("rank 1 waiting for rank 0"); });
  try {
    s.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0 waiting for rank 1"), std::string::npos);
    EXPECT_NE(msg.find("rank 1 waiting for rank 0"), std::string::npos);
  }
}

TEST(Fiber, ExceptionPropagatesAndOthersUnwind) {
  Scheduler s;
  bool other_destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  s.spawn([&] {
    Sentinel guard{&other_destroyed};
    Scheduler::active()->block("never woken");
    FAIL() << "must not resume normally";
  });
  s.spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_TRUE(other_destroyed) << "blocked fiber stack must be unwound";
}

TEST(Fiber, CancellationIsNotAnError) {
  // A fiber that exits via FiberCancelled counts as finished, not failed.
  Scheduler s;
  s.spawn([&] { Scheduler::active()->block("forever"); });
  s.spawn([] { throw std::logic_error("primary"); });
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Fiber, ManyFibersDeepInterleaving) {
  Scheduler s;
  constexpr int kN = 100;
  constexpr int kYields = 25;
  std::vector<int> progress(kN, 0);
  for (int i = 0; i < kN; ++i) {
    s.spawn([&, i] {
      for (int k = 0; k < kYields; ++k) {
        ++progress[static_cast<std::size_t>(i)];
        Scheduler::active()->yield();
      }
    });
  }
  s.run();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(progress[static_cast<std::size_t>(i)], kYields);
}

TEST(Fiber, SpawnValidatesArguments) {
  Scheduler s;
  EXPECT_THROW(s.spawn(nullptr), invalid_argument_error);
  EXPECT_THROW(s.spawn([] {}, 1024), invalid_argument_error);
}

TEST(Fiber, NestedFunctionCallsCanBlock) {
  // Blocking works deep in a call stack, which is what the simulator relies
  // on (recv inside collectives inside algorithms).
  Scheduler s;
  Scheduler::FiberId waiter = -1;
  int depth_reached = 0;
  std::function<void(int)> deep = [&](int d) {
    if (d == 0) {
      Scheduler::active()->block("deep block");
      depth_reached = 42;
      return;
    }
    deep(d - 1);
  };
  waiter = s.spawn([&] { deep(20); });
  s.spawn([&] { Scheduler::active()->unblock(waiter); });
  s.run();
  EXPECT_EQ(depth_reached, 42);
}

TEST(Fiber, CurrentIdMatchesSpawnOrder) {
  Scheduler s;
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    s.spawn([&] { ids.push_back(Scheduler::active()->current()); });
  }
  s.run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 1);
  EXPECT_EQ(ids[2], 2);
}

TEST(Fiber, DestructorUnwindsUnfinishedFibers) {
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Scheduler s;
    s.spawn([&] {
      Sentinel guard{&destroyed};
      Scheduler::active()->block("never");
    });
    // run() never called for the blocked fiber to finish; give it a start:
    s.spawn([] {});
    try {
      s.run();
    } catch (const DeadlockError&) {
      // expected
    }
  }
  EXPECT_TRUE(destroyed);
}


TEST(Fiber, LazyBlockDescriberOnlyRunsOnDeadlock) {
  static int describer_calls = 0;
  describer_calls = 0;
  struct Ctx {
    int id;
  };
  Scheduler::BlockDescriber describe = [](const void* arg) {
    ++describer_calls;
    return std::string("custom wait on widget ") +
           std::to_string(static_cast<const Ctx*>(arg)->id);
  };

  // Normal block/unblock round trip: the describer must never run.
  {
    Scheduler s;
    Scheduler::FiberId sleeper = -1;
    sleeper = s.spawn([&] {
      Ctx ctx{3};
      Scheduler::active()->block(describe, &ctx);
    });
    s.spawn([&] { Scheduler::active()->unblock(sleeper); });
    s.run();
    EXPECT_EQ(describer_calls, 0);
  }

  // Deadlock: the describer materializes the reason into the diagnosis.
  {
    Scheduler s;
    s.spawn([&] {
      Ctx ctx{42};
      Scheduler::active()->block(describe, &ctx);
    });
    try {
      s.run();
      FAIL() << "expected DeadlockError";
    } catch (const DeadlockError& e) {
      EXPECT_NE(std::string(e.what()).find("custom wait on widget 42"),
                std::string::npos);
    }
    EXPECT_GE(describer_calls, 1);
  }
}

TEST(ReadySet, InsertEraseContains) {
  ReadySet r;
  r.resize(10);
  EXPECT_TRUE(r.empty());
  r.insert(3);
  r.insert(7);
  r.insert(3);  // idempotent
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(7));
  EXPECT_FALSE(r.contains(4));
  r.erase(3);
  r.erase(3);  // idempotent
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.contains(3));
  r.erase(7);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.next_cyclic(0), -1);
}

TEST(ReadySet, NextCyclicMatchesRoundRobinScan) {
  // Reference model: the linear scan it replaced — first member at or
  // after the cursor, wrapping to the smallest member.
  const std::size_t n = 300;  // spans several leaf words
  ReadySet r;
  r.resize(n);
  const std::vector<std::size_t> members = {0, 1, 63, 64, 65, 127, 128,
                                            200, 299};
  for (std::size_t m : members) r.insert(m);
  for (std::size_t start = 0; start <= n; ++start) {
    const std::size_t s = start >= n ? 0 : start;
    std::ptrdiff_t want = static_cast<std::ptrdiff_t>(members.front());
    for (std::size_t m : members) {
      if (m >= s) {
        want = static_cast<std::ptrdiff_t>(m);
        break;
      }
    }
    EXPECT_EQ(r.next_cyclic(start), want) << "start=" << start;
  }
}

TEST(ReadySet, WrapAroundFindsLowIds) {
  ReadySet r;
  r.resize(256);
  r.insert(5);
  EXPECT_EQ(r.next_cyclic(0), 5);
  EXPECT_EQ(r.next_cyclic(5), 5);
  EXPECT_EQ(r.next_cyclic(6), 5);    // wraps the whole bitmap
  EXPECT_EQ(r.next_cyclic(255), 5);  // from the last id
  EXPECT_EQ(r.next_cyclic(256), 5);  // off-the-end cursor treated as 0
  r.insert(250);
  EXPECT_EQ(r.next_cyclic(6), 250);
  EXPECT_EQ(r.next_cyclic(251), 5);
}

TEST(ReadySet, SparseLargeCapacity) {
  // Capacity beyond one summary block (> 4096 ids) still wraps correctly.
  ReadySet r;
  r.resize(5000);
  r.insert(4999);
  EXPECT_EQ(r.next_cyclic(0), 4999);
  EXPECT_EQ(r.next_cyclic(4999), 4999);
  r.insert(10);
  EXPECT_EQ(r.next_cyclic(5000), 10);  // off-the-end cursor
  EXPECT_EQ(r.next_cyclic(11), 4999);
  r.erase(4999);
  EXPECT_EQ(r.next_cyclic(11), 10);
  EXPECT_EQ(r.size(), 1u);
}

TEST(ReadySet, ResizeGrowsAndKeepsMembers) {
  ReadySet r;
  r.resize(2);
  r.insert(0);
  r.insert(1);
  r.resize(130);
  EXPECT_TRUE(r.contains(0));
  EXPECT_TRUE(r.contains(1));
  r.insert(129);
  EXPECT_EQ(r.next_cyclic(2), 129);
  EXPECT_EQ(r.next_cyclic(0), 0);
  EXPECT_EQ(r.size(), 3u);
  r.resize(10);  // never shrinks
  EXPECT_EQ(r.capacity(), 130u);
  EXPECT_TRUE(r.contains(129));
}

}  // namespace
}  // namespace alge::fiber
