#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "algs/matmul/local.hpp"
#include "algs/strassen/caps.hpp"
#include "algs/strassen/layout.hpp"
#include "algs/strassen/local.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "sim_test_util.hpp"
#include "support/rng.hpp"

namespace alge::algs {
namespace {

using testutil::reference_matmul;

TEST(StrassenLocal, MatchesClassicalProduct) {
  Rng rng(11);
  for (auto [n, cutoff] : {std::pair{8, 2}, {16, 4}, {48, 3}, {64, 64},
                           {64, 8}}) {
    const auto a = random_matrix(n, n, rng);
    const auto b = random_matrix(n, n, rng);
    std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
    strassen_multiply(a, b, c, n, cutoff);
    EXPECT_LT(max_abs_diff(c, reference_matmul(a, b, n)), 1e-9 * n)
        << "n=" << n << " cutoff=" << cutoff;
  }
}

TEST(StrassenLocal, OddSizesFallBackToClassical) {
  Rng rng(21);
  const int n = 7;
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  strassen_multiply(a, b, c, n, 2);
  EXPECT_LT(max_abs_diff(c, reference_matmul(a, b, n)), 1e-12);
  EXPECT_DOUBLE_EQ(strassen_flops(7, 2), 2.0 * 7 * 7 * 7);
}

TEST(StrassenLocal, FlopFormula) {
  // One level on n=2 with cutoff 1: 7 scalar products (2 flops each as
  // 1×1×1 multiplies) + 18 one-element additions.
  EXPECT_DOUBLE_EQ(strassen_flops(2, 1), 7.0 * 2.0 + 18.0);
  // At or below the cutoff it is the classical count.
  EXPECT_DOUBLE_EQ(strassen_flops(64, 64), 2.0 * 64.0 * 64.0 * 64.0);
  // Strassen beats classical once a few levels kick in.
  EXPECT_LT(strassen_flops(1024, 32), 2.0 * std::pow(1024.0, 3.0));
  EXPECT_EQ(strassen_levels(64, 8), 3);
  EXPECT_EQ(strassen_levels(8, 8), 0);
}

TEST(CapsLayout, ZIndexIsABijection) {
  const int s = 8;
  const int levels = 2;
  std::vector<bool> seen(static_cast<std::size_t>(s) * s, false);
  for (int r = 0; r < s; ++r) {
    for (int c = 0; c < s; ++c) {
      const std::size_t z = z_index(r, c, s, levels);
      ASSERT_LT(z, seen.size());
      EXPECT_FALSE(seen[z]) << "collision at (" << r << "," << c << ")";
      seen[z] = true;
    }
  }
}

TEST(CapsLayout, ZeroLevelsIsRowMajor) {
  EXPECT_EQ(z_index(2, 3, 4, 0), 2u * 4 + 3);
}

TEST(CapsLayout, QuadrantsAreContiguousRuns) {
  const int s = 8;
  const int levels = 1;
  // Quadrant (1,0) occupies the third quarter of the Z-order.
  for (int r = 4; r < 8; ++r) {
    for (int c = 0; c < 4; ++c) {
      const std::size_t z = z_index(r, c, s, levels);
      EXPECT_GE(z, 32u);
      EXPECT_LT(z, 48u);
    }
  }
}

TEST(CapsLayout, RoundTripThroughZOrderAndShares) {
  Rng rng(5);
  const int s = 28;
  const int levels = 2;
  const int g = 7;
  const auto m = random_matrix(s, s, rng);
  const auto z = to_z_order(m, s, levels);
  // Shares partition the matrix exactly.
  std::vector<double> rebuilt(z.size(), 0.0);
  for (int r = 0; r < g; ++r) {
    const auto share = extract_share(z, g, r);
    EXPECT_EQ(share.size(), z.size() / g);
    place_share(rebuilt, g, r, share);
  }
  EXPECT_EQ(rebuilt, z);
  EXPECT_EQ(from_z_order(z, s, levels), m);
}

TEST(CapsLayout, ValidityRules) {
  EXPECT_TRUE(caps_schedule_valid(14, 1, "B"));
  EXPECT_TRUE(caps_schedule_valid(28, 2, "BB"));
  EXPECT_TRUE(caps_schedule_valid(28, 1, "DB"));
  EXPECT_FALSE(caps_schedule_valid(16, 1, "B"));   // 64 % 7 != 0
  EXPECT_FALSE(caps_schedule_valid(14, 1, "BB"));  // too many B's
  EXPECT_FALSE(caps_schedule_valid(14, 1, "D"));   // too few B's
  EXPECT_FALSE(caps_schedule_valid(14, 1, "X"));
  EXPECT_FALSE(caps_schedule_valid(7, 1, "B"));    // odd size
}

// --- Full CAPS runs ---

class CapsRuns
    : public ::testing::TestWithParam<std::tuple<int, int, std::string>> {};

TEST_P(CapsRuns, MatchesReferenceProduct) {
  const auto [n, k, schedule] = GetParam();
  const int p = caps_ranks(k);
  const int levels = static_cast<int>(
      (schedule.empty() ? std::string(static_cast<std::size_t>(k), 'B')
                        : schedule)
          .size());
  Rng rng(77);
  const auto A = random_matrix(n, n, rng);
  const auto B = random_matrix(n, n, rng);
  const auto Az = to_z_order(A, n, levels);
  const auto Bz = to_z_order(B, n, levels);

  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  sim::Machine m(cfg);
  std::vector<std::vector<double>> c_shares(static_cast<std::size_t>(p));
  CapsOptions opts;
  opts.schedule = schedule;
  opts.local_cutoff = 4;
  m.run([&](sim::Comm& comm) {
    const auto a = extract_share(Az, p, comm.rank());
    const auto b = extract_share(Bz, p, comm.rank());
    std::vector<double> c(a.size());
    caps_multiply(comm, n, k, a, b, c, opts);
    c_shares[static_cast<std::size_t>(comm.rank())] = std::move(c);
  });

  std::vector<double> Cz(static_cast<std::size_t>(n) * n, 0.0);
  for (int r = 0; r < p; ++r) {
    place_share(Cz, p, r, c_shares[static_cast<std::size_t>(r)]);
  }
  const auto C = from_z_order(Cz, n, levels);
  EXPECT_LT(max_abs_diff(C, reference_matmul(A, B, n)), 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSchedules, CapsRuns,
    ::testing::Values(std::tuple{14, 1, std::string("B")},
                      std::tuple{28, 1, std::string("B")},
                      std::tuple{28, 1, std::string("DB")},
                      std::tuple{56, 1, std::string("BD")},
                      std::tuple{28, 2, std::string("BB")},
                      std::tuple{56, 2, std::string("BB")},
                      std::tuple{56, 2, std::string("DBB")},
                      std::tuple{42, 1, std::string("B")}));

TEST(CapsCosts, BfsWordCountPerRank) {
  // One BFS level: each rank ships 7 slices of 2·len down and 7 slices of
  // len up, len = n²/(4·7): W = 21·len = 3n²/4 per rank.
  const int n = 28;
  const int k = 1;
  sim::MachineConfig cfg;
  cfg.p = caps_ranks(k);
  cfg.params = core::MachineParams::unit();
  sim::Machine m(cfg);
  Rng rng(3);
  const auto A = random_matrix(n, n, rng);
  const auto Az = to_z_order(A, n, 1);
  m.run([&](sim::Comm& comm) {
    const auto a = extract_share(Az, cfg.p, comm.rank());
    std::vector<double> c(a.size());
    caps_multiply(comm, n, k, a, a, c);
  });
  const double len = n * n / 28.0;
  // One of the 7 down-sends and one up-send are self-sends (free).
  EXPECT_DOUBLE_EQ(m.totals().words_sent_max, 6.0 * 2.0 * len + 6.0 * len);
  EXPECT_DOUBLE_EQ(m.totals().msgs_sent_max, 12.0);
}

TEST(CapsCosts, BfsEarlyMovesFewerWordsThanDfsFirst) {
  // A D step communicates nothing itself but forces the BFS exchange to
  // happen 7 times at half the size: words("DB")/words("BD") = 7·(1/4)·4
  // ... = 7/4 exactly. This is why CAPS takes BFS steps as early as memory
  // allows (the paper's FLM/FUM memory-communication tradeoff).
  const int n = 56;
  auto words = [&](const std::string& sched) {
    sim::MachineConfig cfg;
    cfg.p = caps_ranks(1);
    cfg.params = core::MachineParams::unit();
    sim::Machine m(cfg);
    Rng rng(9);
    const auto A = random_matrix(n, n, rng);
    const auto Az = to_z_order(A, n, 2);
    CapsOptions opts;
    opts.schedule = sched;
    m.run([&](sim::Comm& comm) {
      const auto a = extract_share(Az, cfg.p, comm.rank());
      std::vector<double> c(a.size());
      caps_multiply(comm, n, 1, a, a, c, opts);
    });
    return m.totals().words_total;
  };
  const double w_bd = words("BD");
  const double w_db = words("DB");
  EXPECT_LT(w_bd, w_db);
  EXPECT_NEAR(w_db / w_bd, 7.0 / 4.0, 1e-9);
}

TEST(CapsCosts, StrongScalingAcrossK) {
  // CAPS headline: with per-rank memory ~ c·n²/p (here implied by fixed n
  // and growing p = 7^k), per-rank words drop by ~7^(k·(1-2/w0))... we
  // check the simple monotone fact: per-rank W shrinks when p grows 7x.
  auto w_max = [&](int n, int k) {
    sim::MachineConfig cfg;
    cfg.p = caps_ranks(k);
    cfg.params = core::MachineParams::unit();
    sim::Machine m(cfg);
    Rng rng(13);
    const auto A = random_matrix(n, n, rng);
    const auto Az = to_z_order(A, n, k);
    m.run([&](sim::Comm& comm) {
      const auto a = extract_share(Az, cfg.p, comm.rank());
      std::vector<double> c(a.size());
      caps_multiply(comm, n, k, a, a, c);
    });
    return m.totals().words_sent_max;
  };
  const double w1 = w_max(28, 1);
  const double w2 = w_max(28, 2);
  EXPECT_LT(w2, w1 / 2.0);
}

}  // namespace
}  // namespace alge::algs
