// Property tests: the paper's closed-form optima (Sections IV-V, Eqs.
// 15-20 and the matmul/Strassen limits) against direct numeric
// optimization — dense log-grid scans, bisection, and the generic
// Optimizer — under randomized machine parameters. test_model.cpp pins
// the closed forms to the AlgModel *evaluation*; these tests pin the
// closed-form *optima* to brute force, so a transcription error in either
// the formula or its derivative shows up as a grid point beating the
// "optimum".
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/algmodel.hpp"
#include "core/closed_forms.hpp"
#include "core/nbody_opt.hpp"
#include "core/opt.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace alge::core {
namespace {

MachineParams sample_params(Rng& rng) {
  MachineParams mp;
  mp.gamma_t = rng.uniform(1e-12, 1e-10);
  mp.beta_t = rng.uniform(1e-11, 1e-9);
  mp.alpha_t = rng.uniform(1e-8, 1e-6);
  mp.gamma_e = rng.uniform(1e-11, 1e-9);
  mp.beta_e = rng.uniform(1e-10, 1e-8);
  mp.alpha_e = rng.uniform(1e-8, 1e-6);
  mp.delta_e = rng.uniform(1e-10, 1e-8);
  mp.eps_e = rng.uniform(0.0, 1e-3);
  mp.max_msg_words = rng.uniform(256.0, 1e5);
  return mp;
}

/// argmin of `f` over a logarithmic grid on [lo, hi].
template <typename F>
double grid_argmin(F f, double lo, double hi, int steps) {
  double best_x = lo;
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= steps; ++i) {
    const double x = lo * std::pow(hi / lo, double(i) / steps);
    const double v = f(x);
    if (v < best) {
      best = v;
      best_x = x;
    }
  }
  return best_x;
}

class ClosedFormSeeds : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
    mp_ = sample_params(rng);
    f_ = rng.uniform(4.0, 40.0);
    opt_ = std::make_unique<NBodyOptimum>(f_, mp_);
    // n large enough that M0 sits strictly inside the feasible memory
    // range for a wide band of p.
    n_ = opt_->M0() * rng.uniform(100.0, 1000.0);
    rng_ = std::make_unique<Rng>(rng.next_u64());
  }
  MachineParams mp_;
  double f_ = 0.0;
  double n_ = 0.0;
  std::unique_ptr<NBodyOptimum> opt_;
  std::unique_ptr<Rng> rng_;
};

// --- Eq. (16)/(18): the energy curve's grid minimum is M0 ---

TEST_P(ClosedFormSeeds, NBodyEnergyGridMinimumIsM0) {
  const double M0 = closed::nbody_M0(f_, mp_);
  const double Estar = closed::nbody_min_energy(n_, f_, mp_);
  // Eq. (18) is Eq. (16) evaluated at M0.
  EXPECT_LT(rel_diff(closed::nbody_energy(n_, M0, f_, mp_), Estar), 1e-12);
  // No grid point over four decades around M0 beats the closed form.
  double grid_min = std::numeric_limits<double>::infinity();
  const double bestM = grid_argmin(
      [&](double M) {
        const double e = closed::nbody_energy(n_, M, f_, mp_);
        grid_min = std::min(grid_min, e);
        return e;
      },
      M0 / 100.0, M0 * 100.0, 4000);
  EXPECT_GE(grid_min, Estar * (1.0 - 1e-9));
  EXPECT_LT(rel_diff(bestM, M0), 0.01);
}

TEST_P(ClosedFormSeeds, OptimizerEnergyOptimumLandsInClosedFormPRange) {
  NBodyModel model(f_);
  Optimizer solver(model, n_, mp_);
  const RunPoint best = solver.minimize_energy();
  ASSERT_TRUE(best.feasible);
  EXPECT_LT(rel_diff(best.E, opt_->min_energy(n_)), 2e-3);
  // The attainable-p interval n/M0 <= p <= (n/M0)^2 must contain the
  // solver's choice (up to grid resolution).
  EXPECT_GE(best.p, opt_->min_energy_p_lo(n_) * 0.9);
  EXPECT_LE(best.p, opt_->min_energy_p_hi(n_) * 1.1);
}

// --- Eq. (15): minimum time uses the whole machine and the 2D limit ---

TEST_P(ClosedFormSeeds, MinTimeMatchesClosedFormAtFullMachine) {
  const double p_avail = rng_->uniform(1e3, 1e6);
  NBodyModel model(f_);
  Optimizer solver(model, n_, mp_);
  OptLimits limits;
  limits.p_available = p_avail;
  const RunPoint fastest = solver.minimize_time(limits);
  ASSERT_TRUE(fastest.feasible);
  const double closed_t = opt_->min_time(n_, p_avail);
  EXPECT_LT(rel_diff(fastest.T, closed_t), 2e-3);
  // Eq. (15) evaluated at (p_avail, M = n/sqrt(p)) reproduces it exactly.
  EXPECT_LT(rel_diff(closed::nbody_time(n_, p_avail, n_ / std::sqrt(p_avail),
                                        f_, mp_),
                     closed_t),
            1e-12);
}

// --- Eq. (19): total-power bound ---

TEST_P(ClosedFormSeeds, Eq19AgreesWithDirectPowerEvaluation) {
  const double M = opt_->M0() * rng_->uniform(0.2, 5.0);
  // proc power = E / (p T); E is p-free and p·T is exactly p-free for the
  // n-body forms, so any p inside the data-fit range works as the probe.
  const double p_probe = n_ / M * 2.0;
  const double direct = closed::nbody_energy(n_, M, f_, mp_) /
                        (p_probe * closed::nbody_time(n_, p_probe, M, f_, mp_));
  EXPECT_LT(rel_diff(opt_->proc_power(M), direct), 1e-9);
  // Eq. (19): the bound is exactly budget / per-proc power, so running at
  // the bound consumes the whole budget.
  const double budget = direct * rng_->uniform(2.0, 100.0);
  const double p_max = opt_->max_p_given_total_power(budget, M);
  EXPECT_LT(rel_diff(p_max * direct, budget), 1e-9);
}

// --- Eq. (20): per-processor power bound ---

TEST_P(ClosedFormSeeds, Eq20BoundSitsOnThePowerCurve) {
  // proc_power(M) is convex (a + b/M + c·M): find its grid argmin, pick a
  // target on the increasing branch, and ask Eq. (20) to recover it from
  // the power value alone.
  const double M0 = opt_->M0();
  const double M_minpow = grid_argmin(
      [&](double M) { return opt_->proc_power(M); }, M0 / 100.0, M0 * 100.0,
      4000);
  const double M_target = M_minpow * rng_->uniform(3.0, 30.0);
  const double budget = opt_->proc_power(M_target);
  const double M_max = opt_->max_M_given_proc_power(budget);
  EXPECT_LT(rel_diff(M_max, M_target), 1e-6);
  // Boundary is tight: slightly more memory violates the budget, slightly
  // less (still on the increasing branch) satisfies it.
  EXPECT_GT(opt_->proc_power(M_max * 1.01), budget);
  EXPECT_LE(opt_->proc_power(M_max * 0.99), budget);
}

// --- V-B: deadline closed form vs bisection on the 2D line ---

TEST_P(ClosedFormSeeds, DeadlinePMatchesBisection) {
  const double Tmax =
      opt_->time_threshold_for_optimum() / rng_->uniform(2.0, 20.0);
  const double p_closed = opt_->p_min_for_time(n_, Tmax);
  // T on the 2D line M = n/sqrt(p) is strictly decreasing in p: bisect.
  const auto time_2d = [&](double p) {
    return closed::nbody_time(n_, p, n_ / std::sqrt(p), f_, mp_);
  };
  double lo = 1.0;
  double hi = 1.0;
  while (time_2d(hi) > Tmax) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);
    (time_2d(mid) > Tmax ? lo : hi) = mid;
  }
  EXPECT_LT(rel_diff(p_closed, hi), 1e-6);
  // And the resulting energy is what min_energy_given_time reports.
  const double e_closed = opt_->min_energy_given_time(n_, Tmax);
  const double e_direct =
      closed::nbody_energy(n_, n_ / std::sqrt(p_closed), f_, mp_);
  EXPECT_LT(rel_diff(e_closed, e_direct), 1e-9);
}

// --- Matmul / Strassen limit forms ---

TEST_P(ClosedFormSeeds, MatmulEnergyGridMinimumMatchesOptimizer) {
  const double n = rng_->uniform(1e3, 1e5);
  // Eq. (10) is p-free: brute-force its minimum over M directly...
  double grid_min = std::numeric_limits<double>::infinity();
  grid_argmin(
      [&](double M) {
        const double e = closed::mm25d_energy(n, M, mp_);
        grid_min = std::min(grid_min, e);
        return e;
      },
      8.0, n * n, 6000);
  // ...and ask the generic solver for the same optimum through the model.
  ClassicalMatmulModel model;
  Optimizer solver(model, n, mp_);
  const RunPoint best = solver.minimize_energy();
  ASSERT_TRUE(best.feasible);
  EXPECT_LT(rel_diff(best.E, grid_min), 5e-3);
}

TEST_P(ClosedFormSeeds, LimitFormsAgreeAtTheirMemoryCaps) {
  const double n = rng_->uniform(1e3, 1e5);
  const double p = rng_->uniform(8.0, 4096.0);
  // Eq. (11) is Eq. (10) at the 3D replication limit M = n²/p^(2/3).
  EXPECT_LT(rel_diff(closed::mm3d_energy(n, p, mp_),
                     closed::mm25d_energy(
                         n, n * n / std::pow(p, 2.0 / 3.0), mp_)),
            1e-12);
  // Eq. (14) is Eq. (13) at M = n²/p^(2/ω0).
  const double w0 = StrassenModel::kStrassenOmega;
  EXPECT_LT(rel_diff(closed::strassen_energy_unlimited(n, p, w0, mp_),
                     closed::strassen_energy(
                         n, n * n / std::pow(p, 2.0 / w0), w0, mp_)),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormSeeds, ::testing::Range(0, 16));

}  // namespace
}  // namespace alge::core
