#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "seqsim/cache.hpp"
#include "support/common.hpp"

namespace alge::seqsim {
namespace {

TEST(LruCacheTest, ColdMissesThenHits) {
  LruCache c(4);
  c.read(1);
  c.read(2);
  c.read(1);
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_NEAR(c.hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.read(1);
  c.read(2);
  c.read(1);  // 2 is now LRU
  c.read(3);  // evicts 2
  c.read(1);  // still resident: hit
  EXPECT_EQ(c.misses(), 3u);
  c.read(2);  // was evicted: miss
  EXPECT_EQ(c.misses(), 4u);
}

TEST(LruCacheTest, DirtyEvictionCountsWriteback) {
  LruCache c(1);
  c.write(7);
  EXPECT_EQ(c.writebacks(), 0u);
  c.read(8);  // evicts dirty 7
  EXPECT_EQ(c.writebacks(), 1u);
  c.read(9);  // evicts clean 8
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(LruCacheTest, FlushAccountsResidentDirty) {
  LruCache c(4);
  c.write(1);
  c.write(2);
  c.read(3);
  // 3 misses + 0 writebacks + 2 dirty resident.
  EXPECT_EQ(c.traffic_with_flush(), 5u);
}

TEST(LruCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(LruCache c(0), invalid_argument_error);
}

TEST(TracedMatmul, BothVariantsComputeCorrectProduct) {
  const auto naive = traced_matmul_naive(24, 256);
  EXPECT_LT(naive.max_abs_error, 1e-12);
  const auto blocked = traced_matmul_blocked(24, 8, 256);
  EXPECT_LT(blocked.max_abs_error, 1e-12);
  EXPECT_DOUBLE_EQ(naive.flops, blocked.flops);
}

TEST(TracedMatmul, WholeProblemInCacheMovesCompulsoryOnly) {
  // Fast memory holds all three matrices: W = 3n² (load A,B + flush C...
  // C is loaded once and written back: 3n² loads + n² flush).
  const int n = 8;
  const auto run = traced_matmul_naive(n, 4096);
  EXPECT_EQ(run.words_moved, static_cast<std::size_t>(4 * n * n));
}

TEST(TracedMatmul, BlockingBeatsNaiveUnderSmallCache) {
  const int n = 48;
  const std::size_t M = 768;  // far smaller than 3n² = 6912
  const auto naive = traced_matmul_naive(n, M);
  const auto blocked = traced_matmul_blocked(n, optimal_block(M), M);
  EXPECT_LT(blocked.words_moved, naive.words_moved / 4);
}

TEST(TracedMatmul, BlockedAttainsSequentialLowerBound) {
  // Eq. (3): W = Ω(n³/√M). The blocked schedule must sit within a small
  // constant of it across cache sizes; tightening M must not break that.
  const int n = 48;
  for (std::size_t M : {512u, 1024u, 4096u}) {
    const auto run = traced_matmul_blocked(n, optimal_block(M), M);
    const double bound = core::bounds::sequential_words(
        static_cast<double>(n) * n * n, static_cast<double>(M),
        3.0 * n * n / 2.0, 0.0);
    const double ratio = static_cast<double>(run.words_moved) / bound;
    EXPECT_GT(ratio, 0.3) << "M=" << M;
    EXPECT_LT(ratio, 8.0) << "M=" << M;
  }
}

TEST(TracedMatmul, NaiveTrafficDegradesRelativeToBound) {
  // The naive order re-streams B for every (i, j): its W/bound ratio grows
  // like √M while the blocked ratio stays flat — the sequential face of
  // "use all available memory".
  const int n = 48;
  auto ratio = [&](std::size_t M, bool blocked) {
    const auto run = blocked
                         ? traced_matmul_blocked(n, optimal_block(M), M)
                         : traced_matmul_naive(n, M);
    const double bound = core::bounds::sequential_words(
        static_cast<double>(n) * n * n, static_cast<double>(M), 0.0, 0.0);
    return static_cast<double>(run.words_moved) / bound;
  };
  EXPECT_GT(ratio(2048, false), 4.0 * ratio(2048, true));
  // Naive ratio grows with M; blocked stays within a narrow band.
  EXPECT_GT(ratio(2048, false), 1.5 * ratio(512, false));
  EXPECT_LT(ratio(2048, true) / ratio(512, true), 2.0);
}

TEST(TracedLu, BothVariantsMatchSerialFactorization) {
  const auto naive = traced_lu_naive(24, 128);
  EXPECT_LT(naive.max_abs_error, 1e-10);
  const auto blocked = traced_lu_blocked(24, 6, 128);
  EXPECT_LT(blocked.max_abs_error, 1e-10);
  // Same arithmetic, same flop count: n(n-1)/2 divisions + 2·(trailing).
  EXPECT_DOUBLE_EQ(naive.flops, blocked.flops);
}

TEST(TracedLu, BlockingReducesTrafficUnderSmallCache) {
  const int n = 48;
  const std::size_t M = 512;  // n² = 2304 does not fit
  const auto naive = traced_lu_naive(n, M);
  const auto blocked = traced_lu_blocked(n, optimal_block(M), M);
  EXPECT_LT(blocked.words_moved, naive.words_moved / 2);
}

TEST(TracedLu, BlockedStaysNearTheMatmulTypeBound) {
  // Section III: the Ω(F/√M) bound covers LU (F = n³/3 here).
  const int n = 48;
  for (std::size_t M : {256u, 1024u}) {
    const auto run = traced_lu_blocked(n, optimal_block(M), M);
    const double bound = core::bounds::sequential_words(
        run.flops, static_cast<double>(M), 0.0, 0.0);
    const double ratio = static_cast<double>(run.words_moved) / bound;
    EXPECT_GT(ratio, 0.2) << "M=" << M;
    EXPECT_LT(ratio, 10.0) << "M=" << M;
  }
}

TEST(OptimalBlock, ThreeTilesFit) {
  for (std::size_t M : {12u, 48u, 300u, 3000u}) {
    const int b = optimal_block(M);
    EXPECT_LE(static_cast<std::size_t>(3 * b * b), M);
    EXPECT_GT(3 * (b + 1) * (b + 1), static_cast<int>(M));
  }
  EXPECT_EQ(optimal_block(1), 1);
}

}  // namespace
}  // namespace alge::seqsim
