// Ghost data mode (sim/payload.hpp): payloads carry sizes only, kernels are
// analytic, and every cost the simulator charges — clocks, F/W/S counters,
// message-cap splitting, retry/backoff, trace events, ledger slices,
// Eq. (2) energy — must be bit-identical to the full-data run. These tests
// pin that contract at the layers the big differential gate
// (tools/chaos_explore --ghost=true) exercises only end to end.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "chaos/differential.hpp"
#include "chaos/fault_plan.hpp"
#include "engine/job.hpp"
#include "engine/runner.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

namespace alge {
namespace {

sim::MachineConfig make_config(int p, sim::DataMode mode,
                               double max_msg_words = 1e18) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  cfg.params.max_msg_words = max_msg_words;
  cfg.data_mode = mode;
  return cfg;
}

/// Run the same program on a full and a ghost machine (identical configs
/// otherwise) and assert the cost state — per-rank counters, totals,
/// makespan, energy — is bit-identical. The program must be mode-agnostic:
/// allocate with Comm::alloc and pass Buffer::view() to the Comm API.
void expect_cost_parity(int p, double max_msg_words,
                        const std::function<void(sim::Comm&)>& program) {
  sim::Machine full(make_config(p, sim::DataMode::kFull, max_msg_words));
  sim::Machine ghost(make_config(p, sim::DataMode::kGhost, max_msg_words));
  full.run(program);
  ghost.run(program);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(full.rank_counters(r), ghost.rank_counters(r)) << "rank " << r;
  }
  EXPECT_EQ(full.totals(), ghost.totals());
  EXPECT_EQ(full.makespan(), ghost.makespan());
  EXPECT_EQ(full.energy().breakdown, ghost.energy().breakdown);
}

// --- Message-cap splitting at the exact m boundary -----------------------

TEST(GhostP2P, CapBoundaryParity) {
  const double m = 8.0;
  for (const std::size_t k : {7u, 8u, 9u}) {
    expect_cost_parity(2, m, [k](sim::Comm& c) {
      sim::Buffer buf = c.alloc(k);
      if (c.rank() == 0) {
        c.send(1, buf.view(), /*tag=*/3);
      } else {
        c.recv(0, buf.view(), /*tag=*/3);
      }
    });
    // And the split itself is right: ceil(k/m) messages in ghost mode too.
    sim::Machine ghost(make_config(2, sim::DataMode::kGhost, m));
    ghost.run([k](sim::Comm& c) {
      sim::Buffer buf = c.alloc(k);
      if (c.rank() == 0) {
        c.send(1, buf.view());
      } else {
        c.recv(0, buf.view());
      }
    });
    const double msgs = (k + 7) / 8;  // ceil(k/8)
    EXPECT_DOUBLE_EQ(ghost.rank_counters(0).msgs_sent, msgs) << "k=" << k;
    EXPECT_DOUBLE_EQ(ghost.rank_counters(0).words_sent,
                     static_cast<double>(k));
  }
}

TEST(GhostP2P, SendrecvExchangeParity) {
  expect_cost_parity(2, 4.0, [](sim::Comm& c) {
    sim::Buffer out = c.alloc(10);
    sim::Buffer in = c.alloc(10);
    const int peer = 1 - c.rank();
    c.sendrecv(peer, out.view(), peer, in.view());
    c.compute(25.0);
  });
}

TEST(GhostCollectives, CapBoundaryParity) {
  const int p = 4;
  const double m = 8.0;
  for (const std::size_t k : {7u, 8u, 9u}) {
    expect_cost_parity(p, m, [p, k](sim::Comm& c) {
      const sim::Group world = sim::Group::world(p);
      sim::Buffer block = c.alloc(k);
      sim::Buffer gathered = c.alloc(k * p);
      sim::Buffer reduced = c.alloc(k);
      c.bcast(block.view(), 0, world);
      c.reduce_sum(block.view(), reduced.view(), 0, world);
      c.allgather(block.view(), gathered.view(), world);
      sim::Buffer a2a_in = c.alloc(k * p);
      sim::Buffer a2a_out = c.alloc(k * p);
      c.alltoall(a2a_in.view(), a2a_out.view(), world);
      c.alltoall_bruck(a2a_in.view(), a2a_out.view(), world);
    });
  }
}

// --- Ghost storage is poisoned, views are not ----------------------------

TEST(GhostBuffer, DerefTripsPoisonGuard) {
  sim::Machine ghost(make_config(1, sim::DataMode::kGhost));
  ghost.run([](sim::Comm& c) {
    sim::Buffer b = c.alloc(16);
    EXPECT_TRUE(b.is_ghost());
    EXPECT_EQ(b.size(), 16u);
    EXPECT_THROW(b.span(), internal_error);
    EXPECT_THROW(b.data(), internal_error);
    EXPECT_THROW(b[0], internal_error);
    // The size-only views stay usable: that is the whole point.
    EXPECT_EQ(b.view().size(), 16u);
    EXPECT_EQ(b.view().sub(4, 8).size(), 8u);
  });
  // Memory accounting saw the 16 words even though none were allocated.
  EXPECT_EQ(ghost.rank_counters(0).mem_highwater, 16u);
}

TEST(GhostPayload, ViewsArePoisonedStandalone) {
  const sim::ConstPayload cp = sim::ConstPayload::ghost(5);
  EXPECT_THROW(cp.span(), internal_error);
  EXPECT_THROW(cp.data(), internal_error);
  const sim::Payload mp = sim::Payload::ghost(5);
  EXPECT_THROW(mp.span(), internal_error);
  EXPECT_EQ(mp.sub(1, 3).size(), 3u);
  const sim::ConstPayload conv = mp;  // mutable -> const keeps ghostness
  EXPECT_TRUE(conv.is_ghost());
}

TEST(GhostPayload, GhostTrafficRejectedOnFullMachine) {
  sim::Machine full(make_config(2, sim::DataMode::kFull));
  EXPECT_THROW(full.run([](sim::Comm& c) {
    std::vector<double> buf(4);
    if (c.rank() == 0) {
      c.send(1, sim::ConstPayload::ghost(4));
    } else {
      c.recv(0, buf);
    }
  }),
               invalid_argument_error);
}

// --- Chaos parity --------------------------------------------------------

TEST(GhostChaos, AllPlansDegradeIdentically) {
  // The full seven-algorithm sweep: fault-free plus every bundled plan,
  // full vs ghost, cost signatures bit-identical (including the injected
  // fault counts — the flows carry sizes, and sizes are mode-invariant).
  chaos::GhostDiffOptions opts;
  opts.ps = {4};
  opts.seeds = 1;
  const chaos::GhostDiffReport rep = chaos::ghost_explore(opts);
  EXPECT_EQ(rep.mismatches, 0) << rep.summary;
  EXPECT_EQ(rep.failures, 0) << rep.summary;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.cases, 7);
}

TEST(GhostChaos, RetryExhaustionParity) {
  // Every transmission is dropped up to 8 times but only one retry is
  // allowed: both modes must abort with SimError, after injecting the
  // identical faults.
  chaos::FaultPlanConfig pc;
  pc.name = "exhaust";
  pc.p_drop = 1.0;
  pc.max_drops = 8;
  const chaos::FaultPlan plan(pc);

  chaos::FaultStats stats[2];
  int mode_idx = 0;
  for (const sim::DataMode mode :
       {sim::DataMode::kFull, sim::DataMode::kGhost}) {
    sim::MachineConfig cfg = make_config(2, mode);
    auto injector = plan.make_injector(/*seed=*/7, cfg.params.alpha_t);
    cfg.faults = injector;
    cfg.retry.max_retries = 1;
    sim::Machine m(cfg);
    EXPECT_THROW(m.run([](sim::Comm& c) {
      sim::Buffer buf = c.alloc(10);
      if (c.rank() == 0) {
        c.send(1, buf.view());
      } else {
        c.recv(0, buf.view());
      }
    }),
                 sim::SimError);
    stats[mode_idx++] = injector->stats();
  }
  EXPECT_EQ(stats[0], stats[1]);
  EXPECT_GT(stats[0].drops, 0u);
}

// --- Trace and ledger identity -------------------------------------------

void run_observable(sim::Comm& c) {
  const sim::Group world = sim::Group::world(c.size());
  sim::Buffer block = c.alloc(12);
  {
    auto scope = c.phase("exchange");
    const int peer = c.rank() ^ 1;
    c.sendrecv(peer, block.view(), peer, block.view(), /*tag=*/1);
  }
  {
    auto scope = c.phase("reduce");
    sim::Buffer out = c.alloc(12);
    c.reduce_sum(block.view(), out.view(), 0, world);
    c.compute(36.0);
  }
}

TEST(GhostTrace, EventStreamIdentical) {
  sim::MachineConfig cf = make_config(4, sim::DataMode::kFull, 5.0);
  sim::MachineConfig cg = make_config(4, sim::DataMode::kGhost, 5.0);
  cf.enable_trace = cg.enable_trace = true;
  sim::Machine full(cf);
  sim::Machine ghost(cg);
  full.run(run_observable);
  ghost.run(run_observable);

  const auto& fe = full.trace().events();
  const auto& ge = ghost.trace().events();
  ASSERT_EQ(fe.size(), ge.size());
  ASSERT_GT(fe.size(), 0u);
  for (std::size_t i = 0; i < fe.size(); ++i) {
    const sim::TraceEvent& a = fe[i];
    const sim::TraceEvent& b = ge[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.rank, b.rank) << "event " << i;
    EXPECT_EQ(a.t0, b.t0) << "event " << i;
    EXPECT_EQ(a.t1, b.t1) << "event " << i;
    EXPECT_EQ(a.peer, b.peer) << "event " << i;
    EXPECT_EQ(a.words, b.words) << "event " << i;
    EXPECT_EQ(a.tag, b.tag) << "event " << i;
    EXPECT_EQ(a.flops, b.flops) << "event " << i;
    EXPECT_EQ(a.msgs, b.msgs) << "event " << i;
    const bool labels_match =
        (a.label == nullptr) == (b.label == nullptr) &&
        (a.label == nullptr || std::strcmp(a.label, b.label) == 0);
    EXPECT_TRUE(labels_match) << "event " << i;
  }
}

TEST(GhostLedger, PhaseSlicesIdentical) {
  sim::MachineConfig cf = make_config(4, sim::DataMode::kFull, 5.0);
  sim::MachineConfig cg = make_config(4, sim::DataMode::kGhost, 5.0);
  cf.enable_ledger = cg.enable_ledger = true;
  sim::Machine full(cf);
  sim::Machine ghost(cg);
  full.run(run_observable);
  ghost.run(run_observable);

  ASSERT_EQ(full.phase_names(), ghost.phase_names());
  EXPECT_GE(full.phase_names().size(), 3u);  // (main) + exchange + reduce
  for (int r = 0; r < 4; ++r) {
    const auto& fp = full.phase_counters(r);
    const auto& gp = ghost.phase_counters(r);
    ASSERT_EQ(fp.size(), gp.size()) << "rank " << r;
    for (std::size_t i = 0; i < fp.size(); ++i) {
      EXPECT_EQ(fp[i].flops, gp[i].flops);
      EXPECT_EQ(fp[i].words_sent, gp[i].words_sent);
      EXPECT_EQ(fp[i].msgs_sent, gp[i].msgs_sent);
      EXPECT_EQ(fp[i].words_hops, gp[i].words_hops);
      EXPECT_EQ(fp[i].msgs_hops, gp[i].msgs_hops);
      EXPECT_EQ(fp[i].time, gp[i].time);
      EXPECT_EQ(fp[i].idle, gp[i].idle);
    }
  }
}

// --- Engine integration --------------------------------------------------

engine::ExperimentSpec small_mm_spec() {
  engine::ExperimentSpec s;
  s.alg = engine::Alg::kMm25d;
  s.params = core::MachineParams::unit();
  s.n = 16;
  s.q = 2;
  s.c = 1;
  return s;
}

TEST(GhostEngine, CacheKeysUnchangedForFullMode) {
  const engine::ExperimentSpec full = small_mm_spec();
  EXPECT_EQ(full.canonical_json().find("data_mode"), std::string::npos)
      << "default kFull must stay unserialized or every cached result dies";

  engine::ExperimentSpec ghost = small_mm_spec();
  ghost.data_mode = sim::DataMode::kGhost;
  EXPECT_NE(ghost.canonical_json().find("\"data_mode\":\"ghost\""),
            std::string::npos);
  EXPECT_NE(full.canonical_json(), ghost.canonical_json());

  // Round trip preserves the axis.
  const engine::ExperimentSpec back =
      engine::ExperimentSpec::from_json(json::parse(ghost.canonical_json()));
  EXPECT_EQ(back.canonical_json(), ghost.canonical_json());
  EXPECT_EQ(back.data_mode, sim::DataMode::kGhost);
}

TEST(GhostEngine, ExecuteMatchesFullBitForBit) {
  engine::ExperimentSpec full = small_mm_spec();
  engine::ExperimentSpec ghost = small_mm_spec();
  ghost.data_mode = sim::DataMode::kGhost;
  const engine::ExperimentResult rf = engine::execute(full);
  const engine::ExperimentResult rg = engine::execute(ghost);
  EXPECT_EQ(rf, rg);
}

TEST(GhostEngine, CollectiveBenchMatchesFull) {
  engine::ExperimentSpec s;
  s.alg = engine::Alg::kCollA2aBruck;
  s.params = core::MachineParams::unit();
  s.params.max_msg_words = 8;
  s.p = 8;
  s.payload_words = 9;  // straddles the cap after Bruck's k·g aggregation
  engine::ExperimentSpec g = s;
  g.data_mode = sim::DataMode::kGhost;
  EXPECT_EQ(engine::execute(s), engine::execute(g));
}

TEST(GhostEngine, VerifyingAGhostRunIsRejected) {
  engine::ExperimentSpec ghost = small_mm_spec();
  ghost.data_mode = sim::DataMode::kGhost;
  ghost.verify = true;
  EXPECT_THROW(engine::execute(ghost), invalid_argument_error);
}

}  // namespace
}  // namespace alge
