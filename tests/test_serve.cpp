// Tests for src/serve: wire-protocol framing edge cases (partial reads,
// zero-length / oversized frames, disconnect mid-frame), bit-identity of
// served answers against direct core::Optimizer / engine::execute
// evaluation on both the answer-store miss and hit paths, in-flight
// coalescing, the concurrent-writer hardening of the engine's on-disk
// result cache, the per-request SpanLog, and graceful server shutdown.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/opt.hpp"
#include "engine/cache.hpp"
#include "navigator/navigator.hpp"
#include "engine/runner.hpp"
#include "machines/db.hpp"
#include "obs/span_log.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

namespace alge {
namespace {

using serve::FrameReader;
using Status = serve::FrameReader::Status;

// --- protocol framing ----------------------------------------------------

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Protocol, PipelinedFramesInOneWrite) {
  SocketPair sp;
  std::string out;
  serve::append_frame(out, "first");
  serve::append_frame(out, "second");
  serve::append_frame(out, "third");
  ASSERT_TRUE(serve::write_all(sp.a, out));
  FrameReader reader(sp.b);
  std::string_view payload;
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  EXPECT_EQ(payload, "first");
  EXPECT_TRUE(reader.frame_buffered());
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  EXPECT_EQ(payload, "second");
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  EXPECT_EQ(payload, "third");
  EXPECT_FALSE(reader.frame_buffered());
  ::close(sp.a);
  sp.a = -1;
  EXPECT_EQ(reader.next(&payload), Status::kClosed);
}

TEST(Protocol, PartialDeliveryReassembles) {
  SocketPair sp;
  std::string frame;
  serve::append_frame(frame, std::string(1000, 'x'));
  // Drip the frame through the socket a few bytes at a time from another
  // thread; the reader must block and reassemble.
  std::thread writer([&] {
    for (std::size_t i = 0; i < frame.size(); i += 7) {
      const std::size_t len = std::min<std::size_t>(7, frame.size() - i);
      ASSERT_TRUE(serve::write_all(sp.a, {frame.data() + i, len}));
      std::this_thread::yield();
    }
  });
  FrameReader reader(sp.b);
  std::string_view payload;
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  EXPECT_EQ(payload.size(), 1000u);
  writer.join();
}

TEST(Protocol, ZeroLengthFrameIsErrorButStreamContinues) {
  SocketPair sp;
  std::string out;
  serve::append_frame(out, "");
  serve::append_frame(out, "after");
  ASSERT_TRUE(serve::write_all(sp.a, out));
  FrameReader reader(sp.b);
  std::string_view payload;
  EXPECT_EQ(reader.next(&payload), Status::kEmpty);
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  EXPECT_EQ(payload, "after");
}

TEST(Protocol, OversizedFrameIsUnrecoverable) {
  SocketPair sp;
  std::string out;
  serve::append_frame(out, "this payload exceeds the tiny cap");
  ASSERT_TRUE(serve::write_all(sp.a, out));
  FrameReader reader(sp.b, /*max_frame_bytes=*/8);
  std::string_view payload;
  EXPECT_EQ(reader.next(&payload), Status::kTooLarge);
}

TEST(Protocol, DisconnectMidFrameIsTruncated) {
  SocketPair sp;
  std::string frame;
  serve::append_frame(frame, "never fully arrives");
  ASSERT_TRUE(serve::write_all(sp.a, {frame.data(), frame.size() - 5}));
  ::close(sp.a);
  sp.a = -1;
  FrameReader reader(sp.b);
  std::string_view payload;
  EXPECT_EQ(reader.next(&payload), Status::kTruncated);
}

// --- service: bit-identity and error handling ----------------------------

std::string handle(serve::QueryService& svc, const std::string& req) {
  return *svc.handle(req);
}

/// Parse a response, require ok, return the answer's dump.
std::string answer_of(const std::string& response) {
  const json::Value v = json::parse(response);
  EXPECT_TRUE(v.at("ok").as_bool()) << response;
  return v.at("answer").dump();
}

/// The service's documented answer encoding for a RunPoint, built here
/// independently so the test checks serve against core, not serve against
/// serve.
std::string run_point_dump(const core::RunPoint& pt) {
  json::Value o = json::Value::object();
  o.set("feasible", pt.feasible)
      .set("p", pt.p)
      .set("M", pt.M)
      .set("T", pt.T)
      .set("E", pt.E)
      .set("total_power", pt.total_power())
      .set("proc_power", pt.proc_power());
  return o.dump();
}

core::MachineParams case_study_no_mem() {
  core::MachineParams mp = machines::CaseStudyMachine{}.params();
  mp.mem_words = 0.0;
  return mp;
}

TEST(QueryService, MalformedJsonGetsStructuredError) {
  serve::QueryService svc;
  const json::Value v = json::parse(handle(svc, "{nonsense"));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_FALSE(v.at("error").as_string().empty());
  // The service survives; a well-formed request still works.
  EXPECT_EQ(answer_of(handle(svc, R"({"kind":"ping"})")), "\"pong\"");
}

TEST(QueryService, UnknownKindGetsStructuredError) {
  serve::QueryService svc;
  const json::Value v =
      json::parse(handle(svc, R"({"kind":"divine_intervention"})"));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_NE(v.at("error").as_string().find("divine_intervention"),
            std::string::npos);
}

TEST(QueryService, ClosedFormsBitIdenticalToOptimizerHitAndMiss) {
  serve::QueryService svc;
  const double n = 1e7;
  const core::NBodyModel model(20.0);
  const core::Optimizer solver(model, n, case_study_no_mem());
  const core::OptLimits lim;

  const std::vector<std::pair<std::string, core::RunPoint>> cases = {
      {R"({"kind":"min_energy","model":"nbody","f":20,"n":1e7})",
       solver.minimize_energy(lim)},
      {R"({"kind":"min_time","model":"nbody","f":20,"n":1e7})",
       solver.minimize_time(lim)},
      {R"({"kind":"min_energy_given_time","model":"nbody","f":20,"n":1e7,)"
       R"("t_max":100})",
       solver.min_energy_given_time(100.0, lim)},
      {R"({"kind":"min_time_given_energy","model":"nbody","f":20,"n":1e7,)"
       R"("e_max":1e6})",
       solver.min_time_given_energy(1e6, lim)},
      {R"({"kind":"min_time_given_total_power","model":"nbody","f":20,)"
       R"("n":1e7,"power_max":1e5})",
       solver.min_time_given_total_power(1e5, lim)},
      {R"({"kind":"min_energy_given_total_power","model":"nbody","f":20,)"
       R"("n":1e7,"power_max":1e5})",
       solver.min_energy_given_total_power(1e5, lim)},
      {R"({"kind":"min_time_given_proc_power","model":"nbody","f":20,)"
       R"("n":1e7,"proc_power_max":100})",
       solver.min_time_given_proc_power(100.0, lim)},
      {R"({"kind":"min_energy_given_proc_power","model":"nbody","f":20,)"
       R"("n":1e7,"proc_power_max":100})",
       solver.min_energy_given_proc_power(100.0, lim)},
      {R"({"kind":"evaluate","model":"nbody","f":20,"n":1e7,"p":64,)"
       R"("M":65536})",
       solver.evaluate(64.0, 65536.0)},
  };
  for (const auto& [req, expected] : cases) {
    const std::string miss = handle(svc, req);
    EXPECT_EQ(answer_of(miss), run_point_dump(expected)) << req;
    // Second serve is an answer-store hit and must be the same bytes.
    EXPECT_EQ(handle(svc, req), miss) << req;
  }
}

TEST(QueryService, IdEchoedOnHitAndMiss) {
  serve::QueryService svc;
  const std::string req =
      R"({"id":"req-42","kind":"min_energy","model":"nbody","f":20,"n":1e6})";
  const std::string miss = handle(svc, req);
  EXPECT_EQ(json::parse(miss).at("id").as_string(), "req-42");
  EXPECT_EQ(handle(svc, req), miss);
}

engine::ExperimentSpec ghost_mm_spec(int n = 16) {
  engine::ExperimentSpec s;
  s.alg = engine::Alg::kMm25d;
  s.params = core::MachineParams::unit();
  s.n = n;
  s.q = 2;
  s.c = 1;
  s.data_mode = sim::DataMode::kGhost;
  return s;
}

TEST(QueryService, ExperimentMatchesEngineExecuteHitAndMiss) {
  serve::QueryService svc;
  const engine::ExperimentSpec spec = ghost_mm_spec();
  const std::string req =
      R"({"kind":"experiment","spec":)" + spec.canonical_json() + "}";
  const std::string want = engine::execute(spec).to_json().dump();
  const std::string miss = handle(svc, req);
  EXPECT_EQ(answer_of(miss), want);
  EXPECT_EQ(handle(svc, req), miss);  // answer-store hit, same bytes
  EXPECT_EQ(svc.result_cache().stats().misses, 1u);
}

TEST(QueryService, PartialSpecTakesDefaultsAndGhostMode) {
  serve::QueryService svc;
  // Only the fields that differ from ExperimentSpec defaults; the service
  // fills the rest and defaults data_mode to ghost.
  const std::string req =
      R"({"kind":"experiment","spec":{"alg":"mm25d","n":16,"q":2,"c":1}})";
  EXPECT_EQ(answer_of(handle(svc, req)),
            engine::execute(ghost_mm_spec()).to_json().dump());
}

TEST(QueryService, ConcurrentIdenticalExperimentsSimulateOnce) {
  serve::QueryService svc;
  // Distinct ids → distinct request bytes → the byte-level coalescer does
  // not apply; the spec-level one (plus the result cache) must still keep
  // this to a single simulation.
  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const std::string req = R"({"id":"t)" + std::to_string(i) +
                              R"(","kind":"experiment","spec":)" +
                              ghost_mm_spec().canonical_json() + "}";
      responses[static_cast<std::size_t>(i)] = handle(svc, req);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(svc.result_cache().stats().misses, 1u);
  const std::string want = answer_of(responses[0]);
  for (const std::string& r : responses) EXPECT_EQ(answer_of(r), want);
}

TEST(QueryService, HotAnswersSurviveOneShotFloods) {
  // Second-chance eviction (ServiceOptions::answer_cache_cap): a hot
  // closed-form answer a dashboard polls must outlive a flood of one-shot
  // experiment queries that each displace an entry. The hot entry's
  // referenced bit is re-set by its hits, so the clock hand passes over it
  // and evicts the never-rehit one-shots instead.
  serve::ServiceOptions opts;
  opts.answer_cache_cap = 4;
  serve::QueryService svc(opts);
  const std::string hot =
      R"({"kind":"min_energy","model":"nbody","f":20,"n":1e6})";
  const std::string want = handle(svc, hot);  // seed the store (a miss)
  int hot_hits = 0;
  for (int i = 1; i <= 24; ++i) {
    const std::string req = strfmt(
        R"({"kind":"experiment","spec":{"alg":"mm25d","n":%d,"q":2,"c":1}})",
        4 * i);
    EXPECT_TRUE(json::parse(handle(svc, req)).at("ok").as_bool());
    if (i % 2 == 0) {
      // Poll the hot query at least once per clock lap (cap − 1 inserts):
      // every poll after the first must be an answer-store hit.
      EXPECT_EQ(handle(svc, hot), want);
      ++hot_hits;
    }
  }
  const json::Value stats =
      json::parse(answer_of(handle(svc, R"({"kind":"stats"})")));
  EXPECT_EQ(stats.at("classes").at("min_energy").at("answer_hits").as_double(),
            static_cast<double>(hot_hits))
      << "a hot-query poll missed: the flood evicted the hot answer";
  EXPECT_GT(stats.at("answer_evictions").as_double(), 0.0);
  EXPECT_LE(stats.at("answer_store_entries").as_double(), 4.0);
}

TEST(QueryService, StatsReportsServedClasses) {
  serve::QueryService svc;
  (void)handle(svc, R"({"kind":"min_energy","model":"nbody","f":20,"n":1e6})");
  (void)handle(svc, R"({"kind":"min_energy","model":"nbody","f":20,"n":1e6})");
  const json::Value stats =
      json::parse(answer_of(handle(svc, R"({"kind":"stats"})")));
  const json::Value& cls = stats.at("classes").at("min_energy");
  EXPECT_EQ(cls.at("count").as_double(), 2.0);
  EXPECT_EQ(cls.at("answer_hits").as_double(), 1.0);
  EXPECT_GT(stats.at("answer_store_entries").as_double(), 0.0);
}

// --- batch framing: per-spec caching through one frame -------------------

TEST(QueryService, BatchAnswersMatchSinglesInOrder) {
  serve::QueryService svc;
  const std::string q1 =
      R"({"kind":"min_energy","model":"nbody","f":20,"n":1e6})";
  const std::string q2 = R"({"kind":"ping"})";
  const std::string q3 =
      R"({"kind":"evaluate","model":"nbody","f":20,"n":1e6,"p":64,"M":65536})";
  // Batch elements are re-dispatched in re-serialized (canonical) form, so
  // prime the store with that form: the batch's element 0 must then be a
  // per-spec answer-store hit.
  const std::string single1 = handle(svc, json::parse(q1).dump());

  const std::string batch =
      R"({"kind":"batch","queries":[)" + q1 + "," + q2 + "," + q3 + "]}";
  const json::Value v = json::parse(handle(svc, batch));
  ASSERT_TRUE(v.at("ok").as_bool());
  const json::Value::Array& answers = v.at("answer").as_array();
  ASSERT_EQ(answers.size(), 3u);
  // Element 0 repeats q1: it must be the answer-store hit — the exact
  // bytes the single-frame serve produced.
  EXPECT_EQ(answers[0].dump(), single1);
  EXPECT_EQ(answers[1].at("answer").as_string(), "pong");
  EXPECT_TRUE(answers[2].at("ok").as_bool());

  // The ledger saw the elements individually, and q1 hit the store.
  const json::Value stats =
      json::parse(answer_of(handle(svc, R"({"kind":"stats"})")));
  EXPECT_EQ(stats.at("classes").at("min_energy").at("answer_hits")
                .as_double(),
            1.0);
  EXPECT_EQ(stats.at("classes").at("batch").at("count").as_double(), 1.0);
}

TEST(QueryService, BatchFrameNotCachedButElementsAre) {
  serve::QueryService svc;
  const std::string batch =
      R"({"kind":"batch","queries":[)"
      R"({"kind":"min_energy","model":"nbody","f":20,"n":1e6},)"
      R"({"kind":"min_time","model":"nbody","f":20,"n":1e6}]})";
  const std::string first = handle(svc, batch);
  EXPECT_EQ(handle(svc, batch), first);  // same answers, recomputed frame
  const json::Value stats =
      json::parse(answer_of(handle(svc, R"({"kind":"stats"})")));
  // Only the two element answers are resident; the batch frames are not.
  EXPECT_EQ(stats.at("answer_store_entries").as_double(), 2.0);
  // Second batch served both elements from the store.
  EXPECT_EQ(stats.at("classes").at("min_energy").at("answer_hits")
                .as_double(),
            1.0);
  EXPECT_EQ(stats.at("classes").at("min_time").at("answer_hits").as_double(),
            1.0);
}

TEST(QueryService, BatchElementFailuresStayLocal) {
  serve::QueryService svc;
  const std::string batch =
      R"({"kind":"batch","queries":[{"kind":"no_such_kind"},)"
      R"({"kind":"ping"}]})";
  const json::Value v = json::parse(handle(svc, batch));
  ASSERT_TRUE(v.at("ok").as_bool());
  const json::Value::Array& answers = v.at("answer").as_array();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_FALSE(answers[0].at("ok").as_bool());
  EXPECT_NE(answers[0].at("error").as_string().find("no_such_kind"),
            std::string::npos);
  EXPECT_TRUE(answers[1].at("ok").as_bool());
}

TEST(QueryService, NestedBatchRejected) {
  serve::QueryService svc;
  const std::string batch =
      R"({"kind":"batch","queries":[{"kind":"batch","queries":)"
      R"([{"kind":"ping"}]}]})";
  const json::Value v = json::parse(handle(svc, batch));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_NE(v.at("error").as_string().find("nest"), std::string::npos);
}

// --- navigate queries ----------------------------------------------------

TEST(QueryService, NavigateMatchesDirectNavigatorHitAndMiss) {
  serve::QueryService svc;
  const std::string req =
      R"({"kind":"navigate","model":"nbody","f":20,"n":1e6,)"
      R"("limits":{"p_available":256},"p_samples":8,"m_samples":4})";

  navigator::NavRequest nr;
  nr.model = "nbody";
  nr.f = 20.0;
  nr.n = 1e6;
  nr.params = case_study_no_mem();
  nr.limits.p_available = 256.0;
  nr.p_samples = 8;
  nr.m_samples = 4;
  const std::string want = navigator::navigate(nr).to_json().dump();

  const std::string miss = handle(svc, req);
  EXPECT_EQ(answer_of(miss), want);
  EXPECT_EQ(handle(svc, req), miss);  // answer-store hit, same bytes
}

// --- engine cache: concurrent writers, torn entries (satellite a) --------

TEST(ResultCacheHardening, ConcurrentWritersSharingOneDir) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "alge_cache_conc_test")
          .string();
  std::filesystem::remove_all(dir);
  {
    // Two cache instances (two "processes") race distinct and identical
    // stores into one directory.
    engine::ResultCache a(dir);
    engine::ResultCache b(dir);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 8; ++i) {
          const engine::ExperimentSpec spec = ghost_mm_spec(16 * (1 + i));
          (t % 2 == 0 ? a : b).store(spec, engine::execute(spec));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // A fresh cache must read every entry back from disk, and no *.tmp
  // litter may remain.
  engine::ResultCache fresh(dir);
  for (int i = 0; i < 8; ++i) {
    const engine::ExperimentSpec spec = ghost_mm_spec(16 * (1 + i));
    const auto hit = fresh.lookup(spec);
    ASSERT_TRUE(hit.has_value()) << "n=" << spec.n;
    EXPECT_EQ(hit->to_json().dump(), engine::execute(spec).to_json().dump());
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheHardening, TornEntryDegradesToMissThenHeals) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "alge_cache_torn_test")
          .string();
  std::filesystem::remove_all(dir);
  const engine::ExperimentSpec spec = ghost_mm_spec();
  {
    engine::ResultCache cache(dir);
    cache.store(spec, engine::execute(spec));
  }
  // Tear the entry: truncate the stored file mid-JSON, as an interrupted
  // writer without atomic rename would have.
  std::filesystem::path stored;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    stored = entry.path();
  }
  ASSERT_FALSE(stored.empty());
  std::filesystem::resize_file(stored, 10);

  engine::ResultCache cache(dir);
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  // The miss is repairable: store again, and a fresh instance hits.
  cache.store(spec, engine::execute(spec));
  engine::ResultCache healed(dir);
  EXPECT_TRUE(healed.lookup(spec).has_value());
  std::filesystem::remove_all(dir);
}

// --- SpanLog -------------------------------------------------------------

TEST(SpanLog, RecordsChromeTraceSpans) {
  obs::SpanLog log(/*capacity=*/2);
  const auto t0 = obs::SpanLog::Clock::now();
  const auto t1 = t0 + std::chrono::microseconds(5);
  log.record("min_energy", /*lane=*/1, t0, t1, /*cached=*/false);
  log.record("ping", /*lane=*/0, t0, t1, /*cached=*/true);
  log.record("dropped", /*lane=*/0, t0, t1, /*cached=*/false);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  std::ostringstream out;
  log.write_chrome(out);
  const json::Value doc = json::parse(out.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "min_energy");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_EQ(events[0].at("tid").as_double(), 1.0);
  EXPECT_EQ(events[1].at("args").at("cached").as_bool(), true);
}

// --- server over TCP -----------------------------------------------------

struct TestServer {
  serve::QueryService service;
  serve::Server server;
  TestServer() : server(service, {}) { server.start(); }
  int connect() { return serve::connect_tcp("127.0.0.1", server.port()); }
};

TEST(Server, PipelinedRequestsAnswerInOrder) {
  TestServer ts;
  const int fd = ts.connect();
  std::string out;
  serve::append_frame(out, R"({"id":"1","kind":"ping"})");
  serve::append_frame(
      out, R"({"id":"2","kind":"min_energy","model":"nbody","f":20,"n":1e6})");
  serve::append_frame(out, R"({"id":"3","kind":"ping"})");
  ASSERT_TRUE(serve::write_all(fd, out));
  FrameReader reader(fd);
  std::string_view payload;
  for (const char* want : {"1", "2", "3"}) {
    ASSERT_EQ(reader.next(&payload), Status::kFrame);
    const json::Value v = json::parse(std::string(payload));
    EXPECT_EQ(v.at("id").as_string(), want);
    EXPECT_TRUE(v.at("ok").as_bool());
  }
  ::close(fd);
  ts.server.stop();
  EXPECT_EQ(ts.server.stats().requests, 3u);
}

TEST(Server, MalformedTrafficGetsErrorsNotCrashes) {
  TestServer ts;
  // Zero-length frame: structured error, connection stays usable.
  {
    const int fd = ts.connect();
    std::string out;
    serve::append_frame(out, "");
    serve::append_frame(out, R"({"kind":"ping"})");
    ASSERT_TRUE(serve::write_all(fd, out));
    FrameReader reader(fd);
    std::string_view payload;
    ASSERT_EQ(reader.next(&payload), Status::kFrame);
    EXPECT_FALSE(json::parse(std::string(payload)).at("ok").as_bool());
    ASSERT_EQ(reader.next(&payload), Status::kFrame);
    EXPECT_TRUE(json::parse(std::string(payload)).at("ok").as_bool());
    ::close(fd);
  }
  // Malformed JSON: structured error, connection stays usable.
  {
    const int fd = ts.connect();
    ASSERT_TRUE(serve::write_frame(fd, "{not json"));
    FrameReader reader(fd);
    std::string_view payload;
    ASSERT_EQ(reader.next(&payload), Status::kFrame);
    EXPECT_FALSE(json::parse(std::string(payload)).at("ok").as_bool());
    ::close(fd);
  }
  // Disconnect mid-frame: the server must just drop the connection.
  {
    const int fd = ts.connect();
    std::string frame;
    serve::append_frame(frame, R"({"kind":"ping"})");
    ASSERT_TRUE(serve::write_all(fd, {frame.data(), frame.size() - 3}));
    ::close(fd);
  }
  // …and keep serving new connections afterwards.
  {
    const int fd = ts.connect();
    ASSERT_TRUE(serve::write_frame(fd, R"({"kind":"ping"})"));
    FrameReader reader(fd);
    std::string_view payload;
    ASSERT_EQ(reader.next(&payload), Status::kFrame);
    EXPECT_TRUE(json::parse(std::string(payload)).at("ok").as_bool());
    ::close(fd);
  }
  ts.server.stop();
}

TEST(Server, OversizedFrameErrorsAndCloses) {
  serve::QueryService service;
  serve::ServerOptions opts;
  opts.max_frame_bytes = 64;
  serve::Server server(service, opts);
  server.start();
  const int fd = serve::connect_tcp("127.0.0.1", server.port());
  ASSERT_TRUE(serve::write_frame(fd, std::string(1000, 'x')));
  FrameReader reader(fd);
  std::string_view payload;
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  EXPECT_FALSE(json::parse(std::string(payload)).at("ok").as_bool());
  // After the error response the server closes its end.
  EXPECT_EQ(reader.next(&payload), Status::kClosed);
  ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(Server, GracefulStopDrainsAndIsIdempotent) {
  TestServer ts;
  const int fd = ts.connect();
  ASSERT_TRUE(serve::write_frame(fd, R"({"kind":"ping"})"));
  FrameReader reader(fd);
  std::string_view payload;
  ASSERT_EQ(reader.next(&payload), Status::kFrame);
  ts.server.stop();
  ts.server.stop();  // idempotent
  // The server half-closed this connection during drain; reads now see EOF.
  EXPECT_EQ(reader.next(&payload), Status::kClosed);
  ::close(fd);
  EXPECT_EQ(ts.server.stats().connections_open, 0u);
}

}  // namespace
}  // namespace alge
