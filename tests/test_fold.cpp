// Symmetry-folded execution (sim/fold.hpp, ExecMode::kFolded): one fiber
// per fold-equivalence class, per-class cost replay on the virtual clock,
// bit-identical cost signatures to per-fiber execution. These tests pin
//
//   - the FoldMap structural contract (validate(), trivial maps),
//   - the per-algorithm builders in algs/foldmaps.hpp,
//   - fold <-> fiber cost parity across all algorithms, sizes, and fault
//     plans (faults force the transparent fallback, which must still
//     match) via chaos::fold_explore — the same gate CI runs through
//     tools/chaos_explore --fold=true,
//   - the *congruence property* behind every fold map: members of a class
//     never differ in their (kind, tag, size) event schedules, checked
//     against per-fiber execution traces rather than trusted,
//   - the engine spec axis: exec_mode=folded serializes canonically,
//     defaults stay unserialized (cache keys unchanged), folded results
//     equal fiber results bit for bit, and folded + full data is rejected.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algs/foldmaps.hpp"
#include "algs/harness.hpp"
#include "chaos/differential.hpp"
#include "chaos/fault_plan.hpp"
#include "engine/job.hpp"
#include "engine/runner.hpp"
#include "sim/fold.hpp"
#include "sim/fold_rotor.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

namespace alge {
namespace {

// ------------------------------------------------------ FoldMap contract

TEST(FoldMap, ValidateAcceptsAConsistentPartition) {
  // Even/odd ranks of p=6: reps 0 and 1, sizes 3 and 3.
  sim::FoldMap map(6, {{0, 3, false}, {1, 3, false}},
                   [](int r) { return r % 2; });
  EXPECT_EQ(map.num_classes(), 2);
  EXPECT_FALSE(map.trivial());
  EXPECT_NO_THROW(map.validate());
}

TEST(FoldMap, ValidateRejectsOutOfRangeClassIds) {
  sim::FoldMap map(4, {{0, 4, false}}, [](int r) { return r == 3 ? 1 : 0; });
  EXPECT_THROW(map.validate(), invalid_argument_error);
}

TEST(FoldMap, ValidateRejectsWrongSizes) {
  sim::FoldMap map(4, {{0, 3, false}, {3, 1, false}},
                   [](int r) { return r % 2; });
  EXPECT_THROW(map.validate(), invalid_argument_error);
}

TEST(FoldMap, ValidateRejectsNonMinimalReps) {
  // Declared rep 2 is not the minimum member of its class {0, 2}.
  sim::FoldMap map(4, {{2, 2, false}, {1, 2, false}},
                   [](int r) { return r % 2; });
  EXPECT_THROW(map.validate(), invalid_argument_error);
}

TEST(FoldMap, AllSingletonsIsTrivial) {
  sim::FoldMap map(3, {{0, 1, false}, {1, 1, false}, {2, 1, false}},
                   [](int r) { return r; });
  EXPECT_TRUE(map.trivial());
  EXPECT_NO_THROW(map.validate());
}

// ------------------------------------------------------ builder shapes

TEST(FoldBuilders, Mm25dFoldsCannonIntoFourClasses) {
  const auto map = algs::foldmap_mm25d(3, 1);
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->p(), 9);
  ASSERT_EQ(map->num_classes(), 4);
  EXPECT_NO_THROW(map->validate());
  // Origin; rest of row 0; rest of column 0; interior.
  EXPECT_EQ(map->cls(0).size, 1);
  EXPECT_EQ(map->cls(1).size, 2);
  EXPECT_EQ(map->cls(2).size, 2);
  EXPECT_EQ(map->cls(3).size, 4);
  for (int c = 0; c < 4; ++c) EXPECT_TRUE(map->cls(c).scatter) << c;
}

TEST(FoldBuilders, Mm25dRefusesReplicatedLayers) {
  // c > 1 depth-broadcasts across misaligned layers, so no *static class*
  // fold exists; the 4-argument overload below covers that case with a
  // rotor schedule instead.
  EXPECT_EQ(algs::foldmap_mm25d(4, 2), nullptr);
  EXPECT_EQ(algs::foldmap_mm25d(1, 1), nullptr);  // single rank: trivial
}

TEST(FoldBuilders, RotorMapsForRotatingSchedules) {
  // SUMMA rotates the bcast root every step, LU moves the panel owner,
  // replicated 2.5D skews per layer: all fold through a position-
  // parameterized rotor schedule (FoldMap::rotor() != nullptr) rather
  // than a static class partition.
  const auto summa = algs::foldmap_summa(64, 4);
  ASSERT_NE(summa, nullptr);
  EXPECT_EQ(summa->p(), 16);
  ASSERT_NE(summa->rotor(), nullptr);
  EXPECT_EQ(summa->rotor()->p(), 16);
  EXPECT_FALSE(summa->trivial());
  EXPECT_NO_THROW(summa->validate());
  EXPECT_EQ(algs::foldmap_summa(63, 4), nullptr);  // q must divide n
  EXPECT_EQ(algs::foldmap_summa(64, 1), nullptr);  // single rank: trivial

  const auto lu = algs::foldmap_lu(64, 8, 4, 1);
  ASSERT_NE(lu, nullptr);
  EXPECT_EQ(lu->p(), 16);
  EXPECT_NE(lu->rotor(), nullptr);
  // 2.5D LU gathers blocks point-to-point per owner; no rotor op covers
  // it. Block size must tile n.
  EXPECT_EQ(algs::foldmap_lu(64, 8, 4, 2), nullptr);
  EXPECT_EQ(algs::foldmap_lu(60, 8, 4, 1), nullptr);

  const auto mm = algs::foldmap_mm25d(4, 2, 8, false);
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->p(), 32);
  EXPECT_NE(mm->rotor(), nullptr);
  // Ring replication bcasts along a pipeline, not the binomial tree the
  // rotor replays.
  EXPECT_EQ(algs::foldmap_mm25d(4, 2, 8, true), nullptr);
}

TEST(FoldBuilders, CapsAndFftAreSingleClass) {
  for (const auto& map : {algs::foldmap_caps(49), algs::foldmap_fft(16)}) {
    ASSERT_NE(map, nullptr);
    EXPECT_EQ(map->num_classes(), 1);
    EXPECT_EQ(map->cls(0).size, map->p());
    EXPECT_NO_THROW(map->validate());
  }
}

TEST(FoldBuilders, NbodyFoldsByReplicaRow) {
  const auto map = algs::foldmap_nbody(8, 2);
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->num_classes(), 2);
  EXPECT_NO_THROW(map->validate());
  // Team roles and ring distances depend only on the row, and at every
  // schedule position all row members address the same destination row:
  // uniform, not scatter.
  EXPECT_FALSE(map->cls(0).scatter);
  EXPECT_FALSE(map->cls(1).scatter);
  EXPECT_EQ(algs::foldmap_nbody(8, 3), nullptr);  // c must divide p
}

TEST(FoldBuilders, TsqrRefinesTheBinomialSkeleton) {
  // p=8 fan-in: {0} (receives at every level), {1,3,5,7} (send at level
  // 0), {2,6} (recv then send), {4} (recv twice then send).
  const auto map = algs::foldmap_tsqr(8);
  ASSERT_NE(map, nullptr);
  EXPECT_NO_THROW(map->validate());
  ASSERT_EQ(map->num_classes(), 4);
  EXPECT_EQ(map->class_of(1), map->class_of(7));
  EXPECT_EQ(map->class_of(2), map->class_of(6));
  EXPECT_NE(map->class_of(2), map->class_of(4));
}

// ------------------------------------------- fold <-> fiber differential

// The same differential gate CI runs (tools/chaos_explore --fold=true):
// every algorithm x size class, fault-free and under every bundled plan,
// fiber-ghost vs folded-ghost, bit-identical cost signatures. Faulted
// machines transparently fall back to fibers — those pairs prove the
// fallback never perturbs the signature.
TEST(FoldDifferential, AllAlgorithmsMatchFibersBitForBit) {
  chaos::FoldDiffOptions opts;
  opts.ps = {4, 9, 16};
  opts.seeds = 2;
  const chaos::FoldDiffReport rep = chaos::fold_explore(opts);
  EXPECT_TRUE(rep.ok()) << rep.summary;
  EXPECT_GT(rep.folded_pairs, 0) << "nothing actually folded";
}

TEST(FoldDifferential, FaultedRunFallsBackAndStillMatches) {
  chaos::CaseSpec spec;
  spec.alg = chaos::Alg::kMm25d;
  spec.p = 9;
  chaos::ChaosConfig fiber_cc;
  fiber_cc.data_mode = sim::DataMode::kGhost;
  chaos::ChaosConfig folded_cc = fiber_cc;
  folded_cc.exec_mode = sim::ExecMode::kFolded;

  // Fault-free: the fold actually engages and matches.
  const chaos::RunSignature fiber = chaos::run_case(spec, fiber_cc);
  const chaos::RunSignature folded = chaos::run_case(spec, folded_cc);
  EXPECT_TRUE(folded.fold_active);
  EXPECT_TRUE(folded.cost_identical_to(fiber));

  // Faulted: folding cannot represent per-rank fault streams, so the
  // machine must fall back to per-fiber execution — and still match.
  fiber_cc.plan = chaos::FaultPlan::bundled("drop");
  folded_cc.plan = fiber_cc.plan;
  const chaos::RunSignature fiber_f = chaos::run_case(spec, fiber_cc);
  const chaos::RunSignature folded_f = chaos::run_case(spec, folded_cc);
  EXPECT_FALSE(folded_f.fold_active);
  EXPECT_GT(folded_f.faults.total(), 0u);
  EXPECT_TRUE(folded_f.cost_identical_to(fiber_f));
}

TEST(FoldMachine, FallsBackWhenFaultsAreInstalled) {
  sim::MachineConfig cfg;
  cfg.p = 7;
  cfg.params = core::MachineParams::unit();
  cfg.data_mode = sim::DataMode::kGhost;
  cfg.exec_mode = sim::ExecMode::kFolded;
  cfg.fold = algs::foldmap_caps(7);
  EXPECT_TRUE(sim::Machine(cfg).fold_active());
  cfg.faults = chaos::FaultPlan::bundled("drop").make_injector(
      1, cfg.params.alpha_t);
  EXPECT_FALSE(sim::Machine(cfg).fold_active());
}

// --------------------------------------------- congruence property test

/// Normalized per-rank event schedule from a per-fiber ghost trace: the
/// (kind, tag, words/flops, peer-class) sequence a fold claims is shared
/// by every member of a class. For scatter classes the peer *class* is
/// per-member (TSQR's fan-in), so peers are excluded there; everything
/// else — order, tags, sizes — must still agree exactly.
std::vector<std::string> schedule_of(const sim::Trace& trace, int rank,
                                     const sim::FoldMap& map,
                                     bool include_peers) {
  std::vector<std::string> out;
  for (const sim::TraceEvent& ev : trace.rank_events(rank)) {
    switch (ev.kind) {
      case sim::TraceEvent::Kind::kCompute:
        out.push_back(strfmt("compute f=%.17g", ev.flops));
        break;
      case sim::TraceEvent::Kind::kSend:
        out.push_back(strfmt(
            "send tag=%d w=%.17g m=%.17g peer_cls=%d", ev.tag, ev.words,
            ev.msgs, include_peers ? map.class_of(ev.peer) : -1));
        break;
      case sim::TraceEvent::Kind::kRecv:
        out.push_back(
            strfmt("recv tag=%d w=%.17g peer_cls=%d", ev.tag, ev.words,
                   include_peers ? map.class_of(ev.peer) : -1));
        break;
      default:
        break;  // idle/mem/coll spans are timing, not schedule structure
    }
  }
  return out;
}

/// Run `body` per-fiber in ghost mode with tracing and assert every fold
/// class's members produce identical normalized schedules — i.e. the
/// builder never merges ranks whose (src, tag) schedules differ.
void expect_congruent_classes(
    const std::shared_ptr<const sim::FoldMap>& map,
    const std::function<algs::harness::RunResult()>& body) {
  ASSERT_NE(map, nullptr);
  ASSERT_NO_THROW(map->validate());
  sim::Trace trace;
  algs::harness::RunObserver obs;
  obs.enable_trace = true;
  obs.configure = [](sim::MachineConfig& cfg) {
    cfg.data_mode = sim::DataMode::kGhost;
  };
  obs.after_run = [&trace](const sim::Machine& m) { trace = m.trace(); };
  algs::harness::ScopedRunObserver scoped(std::move(obs));
  (void)body();
  for (int c = 0; c < map->num_classes(); ++c) {
    const sim::FoldClass& fc = map->cls(c);
    const bool include_peers = !fc.scatter;
    const std::vector<std::string> rep_sched =
        schedule_of(trace, fc.rep, *map, include_peers);
    for (int r = fc.rep + 1; r < map->p(); ++r) {
      if (map->class_of(r) != c) continue;
      EXPECT_EQ(schedule_of(trace, r, *map, include_peers), rep_sched)
          << "rank " << r << " diverges from class " << c << " rep "
          << fc.rep;
    }
  }
}

TEST(FoldProperty, Mm25dClassesAreCongruent) {
  const core::MachineParams mp = core::MachineParams::unit();
  expect_congruent_classes(algs::foldmap_mm25d(3, 1), [&] {
    return algs::harness::run_mm25d(18, 3, 1, mp);
  });
}

TEST(FoldProperty, CapsClassIsCongruent) {
  const core::MachineParams mp = core::MachineParams::unit();
  expect_congruent_classes(
      algs::foldmap_caps(7), [&] { return algs::harness::run_caps(14, 1, mp); });
}

TEST(FoldProperty, FftClassIsCongruent) {
  const core::MachineParams mp = core::MachineParams::unit();
  expect_congruent_classes(algs::foldmap_fft(4), [&] {
    return algs::harness::run_fft(8, 8, 4, algs::AllToAllKind::kDirect, mp);
  });
}

TEST(FoldProperty, NbodyRowClassesAreCongruent) {
  const core::MachineParams mp = core::MachineParams::unit();
  expect_congruent_classes(algs::foldmap_nbody(8, 2), [&] {
    return algs::harness::run_nbody(8, 8, 2, mp);
  });
}

TEST(FoldProperty, TsqrSkeletonClassesAreCongruent) {
  const core::MachineParams mp = core::MachineParams::unit();
  expect_congruent_classes(algs::foldmap_tsqr(8), [&] {
    return algs::harness::run_tsqr(8, 2, 8, mp);
  });
}

// ------------------------------------------- rotor per-rank parity

/// Machine parameters that exercise every cost term, with a message cap
/// small enough that multi-message sends occur (nmsg > 1).
core::MachineParams rotor_mp() {
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64.0;
  return mp;
}

/// Per-rank counters of a ghost run under the given exec mode.
std::vector<sim::RankCounters> ghost_counters(
    sim::ExecMode mode, bool* folded, const std::function<void()>& body) {
  std::vector<sim::RankCounters> out;
  algs::harness::RunObserver obs;
  obs.configure = [mode](sim::MachineConfig& cfg) {
    cfg.data_mode = sim::DataMode::kGhost;
    cfg.exec_mode = mode;
  };
  obs.after_run = [&out, folded](const sim::Machine& m) {
    if (folded != nullptr) *folded = m.fold_active();
    for (int r = 0; r < m.p(); ++r) out.push_back(m.rank_counters(r));
  };
  algs::harness::ScopedRunObserver scoped(std::move(obs));
  body();
  return out;
}

/// Rotor congruence is per-rank, not per-class: the replay must reproduce
/// every rank's full counter record bit for bit, world-rank order.
void expect_rotor_parity(const std::function<void()>& body) {
  bool folded = false;
  const auto fib = ghost_counters(sim::ExecMode::kFibers, nullptr, body);
  const auto fol = ghost_counters(sim::ExecMode::kFolded, &folded, body);
  ASSERT_TRUE(folded) << "rotor map did not engage";
  ASSERT_EQ(fib.size(), fol.size());
  for (std::size_t r = 0; r < fib.size(); ++r) {
    ASSERT_EQ(
        std::memcmp(&fib[r], &fol[r], sizeof(sim::RankCounters)), 0)
        << "rank " << r << ": clock " << fib[r].clock << " vs "
        << fol[r].clock << ", words_sent " << fib[r].words_sent << " vs "
        << fol[r].words_sent;
  }
}

TEST(FoldProperty, SummaRotorMatchesFibersPerRank) {
  expect_rotor_parity(
      [&] { algs::harness::run_summa(40, 5, rotor_mp()); });
}

TEST(FoldProperty, LuRotorMatchesFibersPerRank) {
  // nt = 12 > q = 4: block-cyclic reps above 1 and a moving panel owner.
  expect_rotor_parity(
      [&] { algs::harness::run_lu(48, 4, 4, 1, rotor_mp()); });
}

TEST(FoldProperty, Mm25dReplicatedRotorMatchesFibersPerRank) {
  // c > 1: depth replication, per-layer skew, shift loop, depth reduce.
  expect_rotor_parity(
      [&] { algs::harness::run_mm25d(32, 4, 2, rotor_mp()); });
}

// An off-by-one root rotation in the rotor schedule must be caught by the
// per-rank parity check above — this is the mutation a wrong
// position-to-root mapping would produce. Guards the guard.
TEST(FoldProperty, DetectsAWrongRootRotation) {
  const core::MachineParams mp = rotor_mp();
  const auto fib = ghost_counters(sim::ExecMode::kFibers, nullptr, [&] {
    algs::harness::run_summa(40, 5, mp);
  });
  const auto good = algs::foldmap_summa(40, 5);
  ASSERT_NE(good, nullptr);
  auto mutant = std::make_shared<sim::RotorSchedule>(*good->rotor());
  for (sim::RotorOp& op : mutant->ops) {
    if (op.kind == sim::RotorOp::Kind::kBcastRow ||
        op.kind == sim::RotorOp::Kind::kBcastCol) {
      op.root = (op.root + 1) % mutant->q;
    }
  }
  sim::MachineConfig cfg;
  cfg.p = 25;
  cfg.params = mp;
  cfg.data_mode = sim::DataMode::kGhost;
  cfg.exec_mode = sim::ExecMode::kFolded;
  cfg.fold = std::make_shared<const sim::FoldMap>(
      sim::FoldMap::with_rotor(25, std::move(mutant)));
  sim::Machine m(cfg);
  ASSERT_TRUE(m.fold_active());
  m.run([](sim::Comm&) {});
  bool any_diff = false;
  for (int r = 0; r < 25; ++r) {
    const sim::RankCounters rc = m.rank_counters(r);
    any_diff = any_diff ||
               std::memcmp(&fib[static_cast<std::size_t>(r)], &rc,
                           sizeof(sim::RankCounters)) != 0;
  }
  EXPECT_TRUE(any_diff)
      << "parity check failed to distinguish a rotated-root schedule";
}

// A deliberately wrong merge must be caught by the same property check:
// in Cannon, interior ranks and column-0 ranks have different (src, tag)
// schedules (column 0's A-alignment self-sends are free), so a map that
// merges them fails congruence. Guards the guard.
TEST(FoldProperty, DetectsAWrongMerge) {
  const core::MachineParams mp = core::MachineParams::unit();
  // One class for rank 0, one for everything else: merges row/column/
  // interior ranks whose schedules differ.
  auto bad = std::make_shared<sim::FoldMap>(
      9, std::vector<sim::FoldClass>{{0, 1, true}, {1, 8, true}},
      [](int r) { return r == 0 ? 0 : 1; });
  sim::Trace trace;
  algs::harness::RunObserver obs;
  obs.enable_trace = true;
  obs.configure = [](sim::MachineConfig& cfg) {
    cfg.data_mode = sim::DataMode::kGhost;
  };
  obs.after_run = [&trace](const sim::Machine& m) { trace = m.trace(); };
  {
    algs::harness::ScopedRunObserver scoped(std::move(obs));
    (void)algs::harness::run_mm25d(18, 3, 1, mp);
  }
  bool all_equal = true;
  const auto rep_sched = schedule_of(trace, 1, *bad, false);
  for (int r = 2; r < 9; ++r) {
    all_equal = all_equal && schedule_of(trace, r, *bad, false) == rep_sched;
  }
  EXPECT_FALSE(all_equal)
      << "congruence check failed to distinguish known-divergent ranks";
}

// ------------------------------------------------------ engine spec axis

engine::ExperimentSpec foldable_mm_spec() {
  engine::ExperimentSpec s;
  s.alg = engine::Alg::kMm25d;
  s.params = core::MachineParams::unit();
  s.n = 18;
  s.q = 3;
  s.c = 1;
  s.data_mode = sim::DataMode::kGhost;
  return s;
}

TEST(FoldEngine, CacheKeysUnchangedForFiberMode) {
  const engine::ExperimentSpec fiber = foldable_mm_spec();
  EXPECT_EQ(fiber.canonical_json().find("exec_mode"), std::string::npos)
      << "default kFibers must stay unserialized or every cached result "
         "dies";

  engine::ExperimentSpec folded = foldable_mm_spec();
  folded.exec_mode = sim::ExecMode::kFolded;
  EXPECT_NE(folded.canonical_json().find("\"exec_mode\":\"folded\""),
            std::string::npos);
  EXPECT_NE(fiber.canonical_json(), folded.canonical_json());

  const engine::ExperimentSpec back =
      engine::ExperimentSpec::from_json(json::parse(folded.canonical_json()));
  EXPECT_EQ(back.canonical_json(), folded.canonical_json());
  EXPECT_EQ(back.exec_mode, sim::ExecMode::kFolded);
}

TEST(FoldEngine, ExecuteMatchesFibersBitForBit) {
  engine::ExperimentSpec folded = foldable_mm_spec();
  folded.exec_mode = sim::ExecMode::kFolded;
  const engine::ExperimentResult rf = engine::execute(foldable_mm_spec());
  engine::ExperimentResult rd = engine::execute(folded);
  // The folded run reports its slot count; every cost field matches.
  EXPECT_EQ(rf.fold_slots, 0);
  EXPECT_GT(rd.fold_slots, 0);
  rd.fold_slots = 0;
  EXPECT_EQ(rf, rd);
}

TEST(FoldEngine, FoldedRequiresGhostData) {
  engine::ExperimentSpec bad = foldable_mm_spec();
  bad.data_mode = sim::DataMode::kFull;
  bad.exec_mode = sim::ExecMode::kFolded;
  EXPECT_THROW(engine::execute(bad), invalid_argument_error);
}

}  // namespace
}  // namespace alge
