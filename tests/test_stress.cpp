// Stress sweep: every algorithm family executed under randomized machine
// parameters, always verified against its sequential reference and always
// satisfying the energy-ledger identities. Machine parameters must never
// affect *results* — only clocks and joules.
#include <gtest/gtest.h>

#include <cmath>

#include "algs/harness.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace alge::algs::harness {
namespace {

core::MachineParams random_machine(std::uint64_t seed) {
  Rng rng(seed);
  core::MachineParams mp;
  mp.gamma_t = rng.uniform(1e-3, 1e2);
  mp.beta_t = rng.uniform(1e-3, 1e2);
  mp.alpha_t = rng.uniform(1e-3, 1e3);
  mp.gamma_e = rng.uniform(1e-3, 1e2);
  mp.beta_e = rng.uniform(1e-3, 1e2);
  mp.alpha_e = rng.uniform(1e-3, 1e3);
  mp.delta_e = rng.uniform(1e-9, 1e-3);
  mp.eps_e = rng.uniform(0.0, 1.0);
  mp.max_msg_words = std::floor(rng.uniform(4.0, 4096.0));
  return mp;
}

void check(const RunResult& r) {
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.max_abs_error, 1e-7);
  EXPECT_GT(r.makespan, 0.0);
  const auto& b = r.energy.breakdown;
  EXPECT_GT(b.total(), 0.0);
  EXPECT_NEAR(b.total(),
              b.flops + b.words + b.messages + b.memory + b.leakage,
              1e-9 * b.total());
}

class StressSeeds : public ::testing::TestWithParam<int> {
 protected:
  core::MachineParams mp_ = random_machine(
      static_cast<std::uint64_t>(GetParam()) * 7907 + 11);
};

TEST_P(StressSeeds, Matmul25D) {
  check(run_mm25d(24, 2, 2, mp_, true, GetParam()));
}

TEST_P(StressSeeds, Summa) { check(run_summa(24, 3, mp_, true, GetParam())); }

TEST_P(StressSeeds, Caps) {
  CapsOptions opts;
  opts.local_cutoff = 4;
  check(run_caps(14, 1, mp_, opts, true, GetParam()));
}

TEST_P(StressSeeds, NBody) {
  check(run_nbody(48, 8, 2, mp_, true, GetParam()));
}

TEST_P(StressSeeds, Lu25D) {
  check(run_lu(16, 2, 2, 2, mp_, true, GetParam()));
}

TEST_P(StressSeeds, Fft) {
  check(run_fft(16, 16, 4, AllToAllKind::kBruck, mp_, true, GetParam()));
}

TEST_P(StressSeeds, ResultsIndependentOfMachineParameters) {
  // The same seed must give bit-identical *data* under any machine: only
  // the clocks and joules may differ.
  const auto a = run_mm25d(16, 2, 2, mp_, true, /*seed=*/99);
  const auto b = run_mm25d(16, 2, 2, core::MachineParams::unit(), true, 99);
  EXPECT_DOUBLE_EQ(a.max_abs_error, b.max_abs_error);
  EXPECT_DOUBLE_EQ(a.totals.flops_total, b.totals.flops_total);
  EXPECT_DOUBLE_EQ(a.totals.words_total, b.totals.words_total);
}

INSTANTIATE_TEST_SUITE_P(Machines, StressSeeds, ::testing::Range(0, 6));

}  // namespace
}  // namespace alge::algs::harness
