// The chaos subsystem: scripted fault accounting in Comm, ReadySet::select,
// plan-injector determinism, schedule/fault differential invariants, and
// the engine's chaos axes (spec round-trip, cache-key stability, execute
// wiring).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/differential.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/schedule.hpp"
#include "engine/job.hpp"
#include "engine/runner.hpp"
#include "fiber/ready_set.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"

namespace alge {
namespace {

// ------------------------------------------------------ ReadySet::select

TEST(ReadySetSelect, ReturnsKthSmallestAcrossWords) {
  fiber::ReadySet rs;
  rs.resize(300);
  const std::vector<std::size_t> ids = {3, 64, 65, 100, 190, 256};
  for (std::size_t id : ids) rs.insert(id);
  ASSERT_EQ(rs.size(), ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    EXPECT_EQ(rs.select(k), static_cast<std::ptrdiff_t>(ids[k])) << k;
  }
  EXPECT_EQ(rs.select(ids.size()), -1);
  rs.erase(64);
  EXPECT_EQ(rs.select(1), 65);
  rs.erase(3);
  EXPECT_EQ(rs.select(0), 65);
}

// ------------------------------------------- scripted fault accounting

/// Fixed per-send decisions (in program order), for exact-cost assertions.
class ScriptedInjector final : public sim::FaultInjector {
 public:
  std::vector<sim::FaultDecision> script;
  double pause_len = 0.0;
  int pause_rank = -1;

  sim::FaultDecision on_message(const sim::FaultSite&) override {
    sim::FaultDecision d;
    if (calls_ < script.size()) d = script[calls_];
    ++calls_;
    return d;
  }
  double pause_before_event(int rank, std::uint64_t k) override {
    return (rank == pause_rank && k == 0) ? pause_len : 0.0;
  }

 private:
  std::size_t calls_ = 0;
};

struct FaultFixture {
  sim::MachineConfig cfg;
  std::shared_ptr<ScriptedInjector> injector;

  explicit FaultFixture(int p = 2) {
    cfg.p = p;
    cfg.params = core::MachineParams::unit();
    injector = std::make_shared<ScriptedInjector>();
    cfg.faults = injector;
  }
};

/// rank 0 sends 10 words to rank 1; unit params make the fault-free send
/// cost exactly alpha*1 + beta*10 = 11 virtual seconds.
void one_message(sim::Machine& m, std::vector<double>* got) {
  got->assign(10, 0.0);
  m.run([&](sim::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data(10, 3.5);
      c.send(1, data);
    } else {
      c.recv(0, *got);
    }
  });
}

TEST(FaultAccounting, DelayShiftsArrivalOnly) {
  FaultFixture fx;
  sim::FaultDecision d;
  d.delay = 5.0;
  fx.injector->script = {d};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  // Sender pays nothing extra; the receiver idles until arrival.
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 11.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 10.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 16.0);
  EXPECT_EQ(got, std::vector<double>(10, 3.5));
}

TEST(FaultAccounting, DropPaysRetransmissionAndTimeout) {
  FaultFixture fx;
  sim::FaultDecision d;
  d.drops = 1;
  fx.injector->script = {d};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  // One loss: the message moves twice (2x words/msgs/link time) and the
  // sender idles one transport timeout (4*alpha_t = 4).
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 20.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 2.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 2.0 * 11.0 + 4.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).idle_time, 4.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 26.0);
  EXPECT_EQ(got, std::vector<double>(10, 3.5));
}

TEST(FaultAccounting, RepeatedDropsBackOffExponentially) {
  FaultFixture fx;
  sim::FaultDecision d;
  d.drops = 2;
  fx.injector->script = {d};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  // Two losses: 3 transmissions, waits 4 then 4*backoff(2.0) = 8.
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 30.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 3.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 3.0 * 11.0 + 4.0 + 8.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).idle_time, 12.0);
}

TEST(FaultAccounting, DuplicateIsPaidButDeduped) {
  FaultFixture fx;
  sim::FaultDecision d;
  d.duplicates = 1;
  fx.injector->script = {d};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 20.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 2.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 22.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).idle_time, 0.0);  // no timeout
  EXPECT_EQ(got, std::vector<double>(10, 3.5));          // exactly once
}

TEST(FaultAccounting, ExcessDropsExhaustRetriesAndAbort) {
  FaultFixture fx;
  fx.cfg.retry.max_retries = 2;
  sim::FaultDecision d;
  d.drops = 3;
  fx.injector->script = {d};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  EXPECT_THROW(one_message(m, &got), sim::SimError);
}

TEST(FaultAccounting, PauseStallsTheRankBeforeItsCommEvent) {
  FaultFixture fx;
  fx.injector->pause_rank = 0;
  fx.injector->pause_len = 7.0;
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 7.0 + 11.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).idle_time, 7.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 18.0);
}

TEST(FaultAccounting, OvertakeSwapsArrivalsButPreservesPayloadOrder) {
  FaultFixture fx;
  sim::FaultDecision none;
  sim::FaultDecision take;
  take.overtake = true;
  take.reorder_window = 3.0;
  fx.injector->script = {none, take};
  sim::Machine m(fx.cfg);
  std::vector<double> first(10), second(10);
  m.run([&](sim::Comm& c) {
    if (c.rank() == 0) {
      // Round-robin runs rank 0 first, so both sends queue at rank 1.
      c.send(1, std::vector<double>(10, 1.0));
      c.send(1, std::vector<double>(10, 2.0));
    } else {
      c.recv(0, first);
      c.recv(0, second);
    }
  });
  // The transport resequences: payload order is FIFO regardless.
  EXPECT_EQ(first, std::vector<double>(10, 1.0));
  EXPECT_EQ(second, std::vector<double>(10, 2.0));
  // First message was delayed to the overtaker's arrival (22): the
  // receiver synchronizes there, and no extra traffic was charged.
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 22.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 20.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 2.0);
}

TEST(FaultAccounting, OvertakeWithNothingQueuedDegradesToWindowDelay) {
  FaultFixture fx;
  sim::FaultDecision take;
  take.overtake = true;
  take.reorder_window = 3.0;
  fx.injector->script = {take};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 11.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 14.0);
}

TEST(FaultAccounting, InjectedFaultsAppearInTheTrace) {
  FaultFixture fx;
  fx.cfg.enable_trace = true;
  sim::FaultDecision d;
  d.drops = 1;
  fx.injector->script = {d};
  sim::Machine m(fx.cfg);
  std::vector<double> got;
  one_message(m, &got);
  bool saw_drop = false;
  for (const sim::TraceEvent& ev : m.trace().events()) {
    if (ev.kind == sim::TraceEvent::Kind::kFault) {
      EXPECT_STREQ(ev.label, "drop");
      EXPECT_EQ(ev.rank, 0);
      EXPECT_EQ(ev.peer, 1);
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);
}

// ------------------------------------------------ plan-injector hashing

bool same_decision(const sim::FaultDecision& a, const sim::FaultDecision& b) {
  return a.delay == b.delay && a.drops == b.drops &&
         a.duplicates == b.duplicates && a.overtake == b.overtake &&
         a.reorder_window == b.reorder_window;
}

chaos::FaultPlanConfig busy_plan() {
  chaos::FaultPlanConfig cfg;
  cfg.name = "test-busy";
  cfg.p_delay = 0.4;
  cfg.p_drop = 0.3;
  cfg.p_duplicate = 0.3;
  cfg.p_reorder = 0.4;
  cfg.p_pause = 0.2;
  return cfg;
}

TEST(PlanInjector, DecisionsAreAPureFunctionOfSeedAndSite) {
  chaos::PlanInjector a(busy_plan(), 42, 1.0);
  chaos::PlanInjector b(busy_plan(), 42, 1.0);
  const sim::FaultSite f1{0, 1, 0, 10.0};
  const sim::FaultSite f2{2, 3, 5, 10.0};
  // Interleave the two flows differently in each injector: the n-th
  // message of a flow must still get the same decision (this is the
  // schedule-independence the differential harness relies on).
  std::vector<sim::FaultDecision> da(5), db(5);
  da[0] = a.on_message(f1);  // f1 #0
  da[1] = a.on_message(f1);  // f1 #1
  da[3] = a.on_message(f2);  // f2 #0
  da[2] = a.on_message(f1);  // f1 #2
  da[4] = a.on_message(f2);  // f2 #1
  db[3] = b.on_message(f2);  // f2 #0
  db[0] = b.on_message(f1);  // f1 #0
  db[4] = b.on_message(f2);  // f2 #1
  db[1] = b.on_message(f1);  // f1 #1
  db[2] = b.on_message(f1);  // f1 #2
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(same_decision(da[i], db[i])) << "site " << i;
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(a.pause_before_event(1, k), b.pause_before_event(1, k));
  }
}

TEST(PlanInjector, DifferentSeedsProduceDifferentFaultStreams) {
  chaos::PlanInjector a(busy_plan(), 1, 1.0);
  chaos::PlanInjector b(busy_plan(), 2, 1.0);
  const sim::FaultSite f{0, 1, 0, 10.0};
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (!same_decision(a.on_message(f), b.on_message(f))) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, BundledNamesResolveAndUnknownThrows) {
  EXPECT_TRUE(chaos::FaultPlan{}.inert());
  EXPECT_TRUE(chaos::FaultPlan::bundled("none").inert());
  for (const std::string& name : chaos::FaultPlan::bundled_names()) {
    const chaos::FaultPlan plan = chaos::FaultPlan::bundled(name);
    EXPECT_EQ(plan.name(), name);
    EXPECT_EQ(plan.inert(), name == "none") << name;
  }
  EXPECT_THROW(chaos::FaultPlan::bundled("byzantine"),
               invalid_argument_error);
}

// ------------------------------------------------ differential contract

TEST(Differential, ScheduleRunsAreBitIdentical) {
  chaos::CaseSpec spec;
  spec.alg = chaos::Alg::kSumma;
  spec.p = 4;
  const chaos::RunSignature base = chaos::run_case(spec, {});
  for (std::uint64_t seed : {1ull, 2ull, 97ull}) {
    chaos::ChaosConfig cc;
    cc.schedule_seed = seed;
    const chaos::RunSignature run = chaos::run_case(spec, cc);
    EXPECT_TRUE(run.identical_to(base)) << "seed " << seed;
  }
}

TEST(Differential, FaultedRunsConvergeWithIdenticalResults) {
  chaos::CaseSpec spec;
  spec.alg = chaos::Alg::kMm25d;
  spec.p = 8;
  const chaos::RunSignature base = chaos::run_case(spec, {});
  chaos::ChaosConfig cc;
  cc.plan = chaos::FaultPlan::bundled("mixed");
  cc.fault_seed = 3;
  const chaos::RunSignature run = chaos::run_case(spec, cc);
  EXPECT_GT(run.faults.total(), 0u);
  ASSERT_EQ(run.ranks.size(), base.ranks.size());
  for (std::size_t r = 0; r < base.ranks.size(); ++r) {
    // The algorithm's work and numerical output are untouched by the
    // transport's recovery; only time/traffic may grow.
    EXPECT_EQ(run.ranks[r].flops, base.ranks[r].flops) << r;
    EXPECT_GE(run.ranks[r].words_sent, base.ranks[r].words_sent) << r;
  }
  EXPECT_EQ(run.max_abs_error, base.max_abs_error);
  EXPECT_GE(run.makespan, base.makespan * (1.0 - 1e-12));
}

TEST(Differential, FoldedExecutionMatchesFibersAcrossPlans) {
  // Fiber-ghost vs folded-ghost across every algorithm, fault-free and
  // under a fault plan (which forces the transparent fallback to fibers):
  // cost signatures must be bit-identical either way. The fast subset of
  // the tools/chaos_explore --fold=true CI gate; tests/test_fold.cpp runs
  // the wider sweep.
  chaos::FoldDiffOptions opts;
  opts.ps = {4, 9};
  opts.seeds = 1;
  opts.plans = {"drop"};
  const chaos::FoldDiffReport rep = chaos::fold_explore(opts);
  EXPECT_TRUE(rep.ok()) << rep.summary;
  EXPECT_GT(rep.folded_pairs, 0) << "nothing actually folded";
}

// ------------------------------------------------------ engine wiring

TEST(EngineChaos, SpecRoundTripsAndDefaultsKeepCacheKeys) {
  engine::ExperimentSpec spec;
  spec.alg = engine::Alg::kTsqr;
  spec.n = 8;
  spec.nb = 4;
  spec.p = 4;
  spec.verify = true;
  // Default-inert chaos fields must not appear in the canonical key, so
  // pre-chaos cached results stay addressable.
  const std::string key = spec.canonical_json();
  EXPECT_EQ(key.find("chaos_seed"), std::string::npos) << key;
  EXPECT_EQ(key.find("fault_plan"), std::string::npos) << key;

  engine::ExperimentSpec chaotic = spec;
  chaotic.chaos_seed = 7;
  chaotic.fault_plan = "mixed";
  const engine::ExperimentSpec round =
      engine::ExperimentSpec::from_json(chaotic.to_json());
  EXPECT_EQ(round.chaos_seed, 7u);
  EXPECT_EQ(round.fault_plan, "mixed");
  EXPECT_TRUE(round == chaotic);
  EXPECT_NE(chaotic.canonical_json(), key);
}

TEST(EngineChaos, ExecuteHonorsChaosAxes) {
  engine::ExperimentSpec spec;
  spec.alg = engine::Alg::kTsqr;
  spec.n = 8;
  spec.nb = 4;
  spec.p = 4;
  spec.verify = true;
  const engine::ExperimentResult base = engine::execute(spec);

  engine::ExperimentSpec permuted = spec;
  permuted.chaos_seed = 5;
  // A schedule permutation must not change anything observable.
  EXPECT_TRUE(engine::execute(permuted) == base);

  engine::ExperimentSpec faulted = spec;
  faulted.fault_plan = "delay";
  const engine::ExperimentResult slow = engine::execute(faulted);
  // Delays move no extra traffic; they can only stretch the makespan.
  EXPECT_EQ(slow.totals.words_total, base.totals.words_total);
  EXPECT_EQ(slow.totals.msgs_total, base.totals.msgs_total);
  EXPECT_EQ(slow.totals.flops_total, base.totals.flops_total);
  EXPECT_GE(slow.makespan, base.makespan * (1.0 - 1e-12));
  EXPECT_EQ(slow.max_abs_error, base.max_abs_error);
}

}  // namespace
}  // namespace alge
