// Cross-backend conformance suite: every algorithm runs on the simulator,
// on forked shared-memory processes, and on loopback TCP, and the three
// runs must agree exactly —
//
//   * per-rank outputs are bitwise equal,
//   * per-rank model counters (clocks, F/W/S, memory highwater) are
//     bitwise equal, so Eq. (1)/(2) evaluate identically on a real run,
//   * the wire-level traffic each real backend actually moved equals the
//     model's W/S ledger per rank: msgs_sent/words_sent match exactly
//     (self-sends never touch the wire and never touch the send ledger),
//     and wire words_recv plus self-delivered words_recv reproduces the
//     model's words_recv.
//
// This is the repo's ground-truth check that the simulator's cost ledger
// describes traffic a real transport would carry, message for message.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "transport/programs.hpp"
#include "transport/run.hpp"

namespace alge::transport {
namespace {

RunOptions options_for(int p) {
  RunOptions opts;
  opts.p = p;
  opts.params = core::MachineParams::unit();
  opts.timeout_s = 20.0;
  return opts;
}

/// The full oracle between a simulator reference run and a real-backend
/// run of the same program.
void expect_conformant(const RunReport& ref, const RunReport& real,
                       const std::string& label) {
  ASSERT_EQ(ref.p, real.p) << label;
  ASSERT_EQ(ref.ranks.size(), real.ranks.size()) << label;
  for (int r = 0; r < ref.p; ++r) {
    SCOPED_TRACE(label + " rank " + std::to_string(r));
    const RankReport& a = ref.ranks[static_cast<std::size_t>(r)];
    const RankReport& b = real.ranks[static_cast<std::size_t>(r)];
    // Outputs bitwise equal (EXPECT_EQ on doubles is exact equality).
    ASSERT_EQ(a.output.size(), b.output.size());
    for (std::size_t i = 0; i < a.output.size(); ++i) {
      ASSERT_EQ(a.output[i], b.output[i]) << "output word " << i;
    }
    // The model travels with the rank: every counter identical.
    EXPECT_TRUE(a.model == b.model)
        << "model counters diverged: sim clock " << a.model.clock
        << " vs real clock " << b.model.clock << ", sim words_sent "
        << a.model.words_sent << " vs " << b.model.words_sent;
    // Measured wire traffic == the model's W/S ledger, exactly. Self-sends
    // are delivered locally (never on the wire): the send ledger excludes
    // them by construction, the recv ledger includes their words.
    EXPECT_EQ(b.wire.msgs_sent, b.model.msgs_sent);
    EXPECT_EQ(b.wire.words_sent, b.model.words_sent);
    EXPECT_EQ(b.wire.msgs_recv, b.model.msgs_recv);
    EXPECT_EQ(b.wire.words_recv + b.self.words_recv, b.model.words_recv);
    // Self-deliveries carry no model message count.
    EXPECT_EQ(b.self.msgs_sent, b.self.msgs_recv);
  }
  // Aggregates derived from identical per-rank models must agree too.
  EXPECT_EQ(ref.makespan(), real.makespan());
  EXPECT_TRUE(ref.totals() == real.totals());
}

/// Simulator reference through the plain Machine::run path, proving
/// run_sim (and thus the interposed Transport seam) changed nothing.
RunReport reference_via_machine(const RunOptions& opts,
                                const RankProgram& program) {
  RunReport report;
  report.backend = Backend::kSim;
  report.p = opts.p;
  report.ranks.resize(static_cast<std::size_t>(opts.p));
  sim::MachineConfig cfg;
  cfg.p = opts.p;
  cfg.params = opts.params;
  sim::Machine machine(cfg);
  machine.run([&](sim::Comm& comm) {
    RankReport& rr = report.ranks[static_cast<std::size_t>(comm.rank())];
    program(comm, rr.output);
    rr.model = comm.counters();
  });
  return report;
}

class ConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConformanceTest, SimShmTcpAgree) {
  const std::string alg = GetParam();
  const AlgProgram ap = make_program(conformance_spec(alg));
  const RunOptions opts = options_for(ap.p);

  const RunReport sim_run = run_sim(opts, ap.program);

  // The refactored simulator is bit-identical to the pre-seam Machine path.
  const RunReport machine_run = reference_via_machine(opts, ap.program);
  for (int r = 0; r < opts.p; ++r) {
    const auto& a = machine_run.ranks[static_cast<std::size_t>(r)];
    const auto& b = sim_run.ranks[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.output, b.output) << alg << " rank " << r;
    ASSERT_TRUE(a.model == b.model) << alg << " rank " << r;
  }

  const RunReport shm_run = run_shm(opts, ap.program);
  expect_conformant(sim_run, shm_run, alg + "/shm");

  const RunReport tcp_run = run_tcp_threads(opts, ap.program);
  expect_conformant(sim_run, tcp_run, alg + "/tcp");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ConformanceTest,
                         ::testing::ValuesIn(program_names()),
                         [](const auto& info) { return info.param; });

// A send larger than max_msg_words splits into ceil(k/m) model messages;
// the real backends must put exactly that many frames on the wire so the
// measured message count still equals the S ledger.
TEST(ConformanceChunking, SplitSendsMatchLedgerOnEveryBackend) {
  RunOptions opts = options_for(4);
  opts.params.max_msg_words = 7.0;  // 100-word sends -> 15 frames each

  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    constexpr std::size_t kWords = 100;
    std::vector<double> buf(kWords);
    for (std::size_t i = 0; i < kWords; ++i) {
      buf[i] = static_cast<double>(comm.rank() * 1000 + static_cast<int>(i));
    }
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<double> in(kWords);
    comm.sendrecv(next, sim::ConstPayload(buf), prev, sim::Payload(in));
    out = in;
  };

  const RunReport sim_run = run_sim(opts, program);
  // 100 words at m=7 is 15 messages in the ledger.
  EXPECT_EQ(sim_run.ranks[0].model.msgs_sent, 15.0);

  expect_conformant(sim_run, run_shm(opts, program), "chunking/shm");
  expect_conformant(sim_run, run_tcp_threads(opts, program), "chunking/tcp");
}

// Frames larger than one shm ring must stream through in pieces rather
// than deadlock or truncate: ring_bytes is a buffering bound, not a
// message-size cap.
TEST(ConformanceChunking, FramesLargerThanShmRingStreamThrough) {
  RunOptions opts = options_for(2);
  opts.ring_bytes = 1024;  // 128 words of buffer; frames are ~4x that

  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    constexpr std::size_t kWords = 500;
    if (comm.rank() == 0) {
      std::vector<double> buf(kWords);
      for (std::size_t i = 0; i < kWords; ++i) {
        buf[i] = static_cast<double>(i) * 0.5;
      }
      comm.send(1, sim::ConstPayload(buf));
      out = buf;
    } else {
      out.resize(kWords);
      comm.recv(0, sim::Payload(out));
    }
  };

  const RunReport sim_run = run_sim(opts, program);
  expect_conformant(sim_run, run_shm(opts, program), "bigframe/shm");
}

}  // namespace
}  // namespace alge::transport
