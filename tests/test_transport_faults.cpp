// Fault behavior of the real transport backends: a peer that disconnects,
// truncates a frame, dies mid-collective, or finishes without sending must
// surface as a structured TransportError (a SimError subclass) within the
// configured timeout — never a hang, never silent corruption.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "transport/run.hpp"
#include "transport/tcp.hpp"
#include "transport/wire.hpp"

namespace alge::transport {
namespace {

/// A 2-rank TcpTransport for rank 0 whose link to rank 1 is one end of a
/// socketpair; the other end is returned for the test to script the peer.
struct ScriptedPeer {
  TcpTransport transport;
  int peer_fd;

  static ScriptedPeer make(double timeout_s = 2.0) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::vector<int> fds = {-1, sv[0]};
    return ScriptedPeer{
        TcpTransport(0, 2, std::move(fds), /*max_frame_bytes=*/4096,
                     timeout_s),
        sv[1]};
  }

  ~ScriptedPeer() {
    if (peer_fd >= 0) ::close(peer_fd);
  }
};

WireChunkHeader header_for(std::size_t words) {
  WireChunkHeader h{};
  h.magic = kWireMagic;
  h.src = 1;
  h.tag = 0;
  h.chunk_index = 0;
  h.chunk_count = 1;
  h.msg_words = words;
  h.chunk_words = words;
  h.arrival = 0.0;
  h.msg_count = 1.0;
  return h;
}

std::string frame_bytes(const WireChunkHeader& h,
                        const std::vector<double>& words) {
  std::string body(reinterpret_cast<const char*>(&h), sizeof(h));
  body.append(reinterpret_cast<const char*>(words.data()),
              words.size() * sizeof(double));
  std::string framed;
  serve::append_frame(framed, body);
  return framed;
}

void expect_receive_throws(TcpTransport& t, const std::string& what_contains) {
  std::vector<double> out(4);
  try {
    t.receive(1, 0, sim::Payload(out));
    FAIL() << "receive did not throw (expected \"" << what_contains << "\")";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find(what_contains), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(TcpFaults, PeerDisconnectSurfacesAsClosed) {
  ScriptedPeer sp = ScriptedPeer::make();
  ::close(sp.peer_fd);
  sp.peer_fd = -1;
  expect_receive_throws(sp.transport, "peer closed the connection");
}

TEST(TcpFaults, TruncatedFrameSurfacesAsTruncated) {
  ScriptedPeer sp = ScriptedPeer::make();
  const std::string framed = frame_bytes(header_for(4), {1.0, 2.0, 3.0, 4.0});
  // Deliver the length prefix and half the body, then hang up mid-frame.
  ASSERT_TRUE(serve::write_all(sp.peer_fd, framed.substr(0, 20)));
  ::close(sp.peer_fd);
  sp.peer_fd = -1;
  expect_receive_throws(sp.transport, "truncated frame");
}

TEST(TcpFaults, SilentPeerTimesOutInsteadOfHanging) {
  ScriptedPeer sp = ScriptedPeer::make(/*timeout_s=*/0.2);
  // Peer stays connected but never sends: the socket deadline must fire.
  expect_receive_throws(sp.transport, "failed or timed out");
}

TEST(TcpFaults, OversizedFrameIsRejected) {
  ScriptedPeer sp = ScriptedPeer::make();
  // Claim a frame far beyond max_frame_bytes; FrameReader rejects it
  // before buffering.
  const unsigned char big_len[4] = {0x01, 0x00, 0x00, 0x00};  // 16 MiB
  ASSERT_TRUE(serve::write_all(
      sp.peer_fd,
      std::string_view(reinterpret_cast<const char*>(big_len), 4)));
  expect_receive_throws(sp.transport, "exceeds");
}

TEST(TcpFaults, MalformedHeaderIsRejected) {
  ScriptedPeer sp = ScriptedPeer::make();
  WireChunkHeader h = header_for(4);
  h.magic = 0xdeadbeef;
  ASSERT_TRUE(serve::write_all(sp.peer_fd,
                               frame_bytes(h, {1.0, 2.0, 3.0, 4.0})));
  expect_receive_throws(sp.transport, "malformed frame");
}

TEST(TcpFaults, BodyWordMismatchIsRejected) {
  ScriptedPeer sp = ScriptedPeer::make();
  WireChunkHeader h = header_for(4);
  h.chunk_words = 8;  // header promises more words than the body carries
  h.msg_words = 8;
  ASSERT_TRUE(serve::write_all(sp.peer_fd,
                               frame_bytes(h, {1.0, 2.0, 3.0, 4.0})));
  expect_receive_throws(sp.transport, "header declares");
}

TEST(TcpFaults, MissingMeshConnectionIsRejected) {
  std::vector<int> fds = {-1, -1, -1};
  TcpTransport t(0, 3, std::move(fds), 4096, 1.0);
  std::vector<double> out(1);
  EXPECT_THROW(t.receive(2, 0, sim::Payload(out)), TransportError);
}

// A rank that throws mid-collective tears down its sockets; the whole TCP
// run must fail with a structured error, not hang the surviving ranks.
TEST(TcpFaults, RankAbortMidCollectiveFailsTheRun) {
  RunOptions opts;
  opts.p = 2;
  opts.params = core::MachineParams::unit();
  opts.timeout_s = 5.0;
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    if (comm.rank() == 1) {
      throw std::runtime_error("rank 1 aborts before sending");
    }
    out.resize(8);
    comm.recv(1, sim::Payload(out));
  };
  EXPECT_THROW(run_tcp_threads(opts, program), TransportError);
}

// --- shm ---

RunOptions shm_options(int p, double timeout_s) {
  RunOptions opts;
  opts.p = p;
  opts.params = core::MachineParams::unit();
  opts.timeout_s = timeout_s;
  return opts;
}

void expect_shm_run_fails(const RunOptions& opts, const RankProgram& program,
                          const std::string& what_contains) {
  try {
    run_shm(opts, program);
    FAIL() << "run_shm did not throw (expected \"" << what_contains << "\")";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find(what_contains), std::string::npos)
        << "actual error: " << e.what();
  }
}

// A partner process that dies abruptly (here: _exit without reporting, the
// moral equivalent of SIGKILL for the protocol) unblocks its peer with a
// structured error instead of leaving it to spin until the timeout.
TEST(ShmFaults, PartnerDeathUnblocksReceiver) {
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    if (comm.rank() == 1) ::_exit(7);  // dies without reporting
    out.resize(8);
    comm.recv(1, sim::Payload(out));
  };
  expect_shm_run_fails(shm_options(2, 10.0), program, "exited with status 7");
}

TEST(ShmFaults, PartnerCrashBySignalIsReported) {
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    if (comm.rank() == 1) ::raise(SIGKILL);
    out.resize(8);
    comm.recv(1, sim::Payload(out));
  };
  expect_shm_run_fails(shm_options(2, 10.0), program, "killed by signal 9");
}

// A peer that finishes cleanly but never sends the expected message is a
// protocol error, not a timeout.
TEST(ShmFaults, PeerFinishedWithoutSending) {
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    if (comm.rank() == 1) return;  // exits cleanly, sends nothing
    out.resize(8);
    comm.recv(1, sim::Payload(out));
  };
  expect_shm_run_fails(shm_options(2, 10.0), program,
                       "finished without sending");
}

// Two ranks each waiting on the other (a program bug) must be cut off by
// the per-wait deadline, with the timeout in the error text.
TEST(ShmFaults, DeadlockIsTimeoutBounded) {
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    out.resize(4);
    comm.recv(1 - comm.rank(), sim::Payload(out));  // both block forever
  };
  expect_shm_run_fails(shm_options(2, 0.5), program, "timed out");
}

// A program exception inside one rank propagates through the arena as that
// rank's error string.
TEST(ShmFaults, ProgramExceptionIsCarriedVerbatim) {
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    (void)out;
    if (comm.rank() == 0) {
      throw std::runtime_error("synthetic program failure xyz");
    }
  };
  expect_shm_run_fails(shm_options(2, 10.0), program,
                       "synthetic program failure xyz");
}

// Self-consumption without a matching self-send is the simulator's own
// deadlock diagnostic, raised identically on real backends.
TEST(ShmFaults, SelfRecvWithoutSelfSendIsDiagnosed) {
  const RankProgram program = [](sim::Comm& comm, std::vector<double>& out) {
    out.resize(4);
    comm.recv(comm.rank(), sim::Payload(out));
  };
  expect_shm_run_fails(shm_options(2, 10.0), program,
                       "no pending self-send");
}

}  // namespace
}  // namespace alge::transport
