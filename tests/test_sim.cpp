#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "sim/payload_pool.hpp"
#include "support/common.hpp"
#include "topo/grid.hpp"

namespace alge::sim {
namespace {

core::MachineParams unit_params() { return core::MachineParams::unit(); }

MachineConfig unit_config(int p) {
  MachineConfig cfg;
  cfg.p = p;
  cfg.params = unit_params();
  return cfg;
}

TEST(SimPointToPoint, PayloadDelivered) {
  Machine m(unit_config(2));
  std::vector<double> got(3);
  m.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> data = {1.0, 2.0, 3.0};
      c.send(1, data);
    } else {
      c.recv(0, got);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SimPointToPoint, CountersMatchTraffic) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data(10, 1.0);
      c.send(1, data);
    } else {
      std::vector<double> buf(10);
      c.recv(0, buf);
    }
  });
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 10.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 1.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).words_recv, 10.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).msgs_recv, 1.0);
  // Unit params: sender time = alpha*1 + beta*10 = 11.
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 11.0);
  // Receiver synchronizes to arrival.
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 11.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 11.0);
}

TEST(SimPointToPoint, MessageSplitAtCap) {
  MachineConfig cfg = unit_config(2);
  cfg.params.max_msg_words = 4;  // 10 words -> 3 messages
  Machine m(cfg);
  m.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data(10, 0.0);
      c.send(1, data);
    } else {
      std::vector<double> buf(10);
      c.recv(0, buf);
    }
  });
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 3.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 10.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 3.0 * 1.0 + 10.0 * 1.0);
}

TEST(SimPointToPoint, ZeroWordMessageStillCostsLatency) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) {
    std::span<double> none;
    if (c.rank() == 0) {
      c.send(1, none);
    } else {
      c.recv(0, none);
    }
  });
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, 1.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 0.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 1.0);
}

TEST(SimPointToPoint, SelfSendIsFree) {
  Machine m(unit_config(1));
  std::vector<double> got(2);
  m.run([&](Comm& c) {
    const std::vector<double> data = {5.0, 6.0};
    c.send(0, data);
    c.recv(0, got);
  });
  EXPECT_EQ(got, (std::vector<double>{5.0, 6.0}));
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, 0.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 0.0);
}

TEST(SimPointToPoint, TagsKeepStreamsSeparate) {
  Machine m(unit_config(2));
  std::vector<double> a(1);
  std::vector<double> b(1);
  m.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> x = {1.0};
      const std::vector<double> y = {2.0};
      c.send(1, x, /*tag=*/7);
      c.send(1, y, /*tag=*/8);
    } else {
      // Receive in the opposite order of sending: tags must disambiguate.
      c.recv(0, b, /*tag=*/8);
      c.recv(0, a, /*tag=*/7);
    }
  });
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
}

TEST(SimPointToPoint, FifoPerSourceAndTag) {
  Machine m(unit_config(2));
  std::vector<double> first(1);
  std::vector<double> second(1);
  m.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> x = {10.0};
      const std::vector<double> y = {20.0};
      c.send(1, x);
      c.send(1, y);
    } else {
      c.recv(0, first);
      c.recv(0, second);
    }
  });
  EXPECT_DOUBLE_EQ(first[0], 10.0);
  EXPECT_DOUBLE_EQ(second[0], 20.0);
}

TEST(SimPointToPoint, SizeMismatchIsError) {
  Machine m(unit_config(2));
  EXPECT_THROW(
      m.run([&](Comm& c) {
        if (c.rank() == 0) {
          std::vector<double> data(5, 0.0);
          c.send(1, data);
        } else {
          std::vector<double> buf(4);
          c.recv(0, buf);
        }
      }),
      SimError);
}

TEST(SimPointToPoint, UnconsumedMessageIsError) {
  Machine m(unit_config(2));
  EXPECT_THROW(m.run([&](Comm& c) {
                 if (c.rank() == 0) {
                   std::vector<double> data(1, 0.0);
                   c.send(1, data);
                 }
               }),
               SimError);
}

TEST(SimDeadlock, MutualRecvDiagnosed) {
  Machine m(unit_config(2));
  try {
    m.run([&](Comm& c) {
      std::vector<double> buf(1);
      c.recv(1 - c.rank(), buf);
    });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos);
    EXPECT_NE(msg.find("rank 0 waiting"), std::string::npos);
  }
}

TEST(SimCompute, AdvancesClockAndFlops) {
  MachineConfig cfg = unit_config(1);
  cfg.params.gamma_t = 0.5;
  Machine m(cfg);
  m.run([&](Comm& c) { c.compute(100.0); });
  EXPECT_DOUBLE_EQ(m.rank_counters(0).flops, 100.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).clock, 50.0);
}

TEST(SimTime, ReceiverWaitsForLateSender) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) {
    std::vector<double> buf(1, 0.0);
    if (c.rank() == 0) {
      c.compute(100.0);  // clock 100
      c.send(1, buf);    // arrival 102
    } else {
      c.recv(0, buf);
    }
  });
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 102.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).idle_time, 102.0);
}

TEST(SimTime, EarlySendDoesNotStallReceiver) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) {
    std::vector<double> buf(1, 0.0);
    if (c.rank() == 0) {
      c.send(1, buf);  // arrival 2
    } else {
      c.compute(50.0);
      c.recv(0, buf);  // already there
    }
  });
  EXPECT_DOUBLE_EQ(m.rank_counters(1).clock, 50.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(1).idle_time, 0.0);
}

TEST(SimMemory, HighWaterTracksBuffers) {
  Machine m(unit_config(1));
  m.run([&](Comm& c) {
    auto a = c.alloc(100);
    {
      auto b = c.alloc(50);
      EXPECT_EQ(c.counters().mem_words, 150u);
    }
    EXPECT_EQ(c.counters().mem_words, 100u);
    auto d = c.alloc(20);
  });
  EXPECT_EQ(m.rank_counters(0).mem_highwater, 150u);
  EXPECT_EQ(m.rank_counters(0).mem_words, 0u);
}

TEST(SimMemory, CapacityEnforced) {
  MachineConfig cfg = unit_config(1);
  cfg.params.mem_words = 64;
  Machine m(cfg);
  EXPECT_THROW(m.run([&](Comm& c) { auto b = c.alloc(65); }), SimError);
}

TEST(SimMemory, CapacityExactFitOk) {
  MachineConfig cfg = unit_config(1);
  cfg.params.mem_words = 64;
  Machine m(cfg);
  EXPECT_NO_THROW(m.run([&](Comm& c) { auto b = c.alloc(64); }));
}

TEST(SimEnergyTest, UnitParamsMatchCounts) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) {
    auto buf = c.alloc(8);
    c.compute(10.0);
    if (c.rank() == 0) {
      c.send(1, buf.span());
    } else {
      c.recv(0, buf.span());
    }
  });
  const SimEnergy e = m.energy();
  // flops: 2 ranks * 10; words: 8; messages: 1.
  EXPECT_DOUBLE_EQ(e.breakdown.flops, 20.0);
  EXPECT_DOUBLE_EQ(e.breakdown.words, 8.0);
  EXPECT_DOUBLE_EQ(e.breakdown.messages, 1.0);
  // memory: p * mean_highwater(8) * T; leakage: p * T.
  const double T = m.makespan();
  EXPECT_DOUBLE_EQ(e.breakdown.memory, 2.0 * 8.0 * T);
  EXPECT_DOUBLE_EQ(e.breakdown.leakage, 2.0 * T);
  EXPECT_DOUBLE_EQ(e.total(), 20.0 + 8.0 + 1.0 + 2.0 * 8.0 * T + 2.0 * T);
  EXPECT_GT(e.power(), 0.0);
}

// --- Collectives ---

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BcastDeliversToAll) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    std::vector<double> data(4);
    if (c.rank() == 1 % p) {
      std::iota(data.begin(), data.end(), 1.0);
    }
    c.bcast(data, 1 % p, Group::world(p));
    got[static_cast<std::size_t>(c.rank())] = data;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              (std::vector<double>{1.0, 2.0, 3.0, 4.0}))
        << "rank " << r;
  }
}

TEST_P(CollectiveSizes, ReduceSumsContributions) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<double> result;
  m.run([&](Comm& c) {
    std::vector<double> mine = {static_cast<double>(c.rank() + 1), 1.0};
    std::vector<double> out(2);
    c.reduce_sum(mine, out, 0, Group::world(p));
    if (c.rank() == 0) result = out;
  });
  const double expected = p * (p + 1) / 2.0;
  ASSERT_EQ(result.size(), 2u);
  EXPECT_DOUBLE_EQ(result[0], expected);
  EXPECT_DOUBLE_EQ(result[1], static_cast<double>(p));
}

TEST_P(CollectiveSizes, AllreduceAgreesEverywhere) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<double> results(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    std::vector<double> mine = {static_cast<double>(c.rank())};
    c.allreduce_sum(mine, Group::world(p));
    results[static_cast<std::size_t>(c.rank())] = mine[0];
  });
  const double expected = p * (p - 1) / 2.0;
  for (double r : results) EXPECT_DOUBLE_EQ(r, expected);
}

TEST_P(CollectiveSizes, AllgatherOrdersByGroupIndex) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    std::vector<double> mine = {static_cast<double>(10 * c.rank()),
                                static_cast<double>(10 * c.rank() + 1)};
    std::vector<double> out(static_cast<std::size_t>(2 * p));
    c.allgather(mine, out, Group::world(p));
    got[static_cast<std::size_t>(c.rank())] = out;
  });
  for (int r = 0; r < p; ++r) {
    for (int j = 0; j < p; ++j) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)]
                          [static_cast<std::size_t>(2 * j)],
                       10.0 * j);
    }
  }
}

TEST_P(CollectiveSizes, AlltoallRoutesBlocks) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    // Block j of rank r carries value 100*r + j.
    std::vector<double> in(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      in[static_cast<std::size_t>(j)] = 100.0 * c.rank() + j;
    }
    std::vector<double> out(static_cast<std::size_t>(p));
    c.alltoall(in, out, Group::world(p));
    got[static_cast<std::size_t>(c.rank())] = out;
  });
  for (int r = 0; r < p; ++r) {
    for (int j = 0; j < p; ++j) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)]
                          [static_cast<std::size_t>(j)],
                       100.0 * j + r);
    }
  }
}

TEST_P(CollectiveSizes, BruckMatchesDirectAlltoall) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<std::vector<double>> direct(static_cast<std::size_t>(p));
  std::vector<std::vector<double>> bruck(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    const std::size_t k = 3;
    std::vector<double> in(static_cast<std::size_t>(p) * k);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = 1000.0 * c.rank() + static_cast<double>(i);
    }
    std::vector<double> out1(in.size());
    std::vector<double> out2(in.size());
    c.alltoall(in, out1, Group::world(p));
    c.alltoall_bruck(in, out2, Group::world(p));
    direct[static_cast<std::size_t>(c.rank())] = out1;
    bruck[static_cast<std::size_t>(c.rank())] = out2;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(direct[static_cast<std::size_t>(r)],
              bruck[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST_P(CollectiveSizes, BarrierSynchronizesClocks) {
  const int p = GetParam();
  Machine m(unit_config(p));
  m.run([&](Comm& c) {
    c.compute(static_cast<double>(c.rank()) * 10.0);
    c.barrier();
    // After a barrier everyone's clock is at least the slowest rank's
    // pre-barrier clock.
    EXPECT_GE(c.clock(), (p - 1) * 10.0);
  });
}

TEST_P(CollectiveSizes, GatherScatterRoundTrip) {
  const int p = GetParam();
  Machine m(unit_config(p));
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  m.run([&](Comm& c) {
    std::vector<double> mine = {static_cast<double>(c.rank() * 2),
                                static_cast<double>(c.rank() * 2 + 1)};
    std::vector<double> all(static_cast<std::size_t>(2 * p));
    c.gather(mine, all, 0, Group::world(p));
    std::vector<double> back(2);
    c.scatter(all, back, 0, Group::world(p));
    got[static_cast<std::size_t>(c.rank())] = back;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              (std::vector<double>{static_cast<double>(r * 2),
                                   static_cast<double>(r * 2 + 1)}));
  }
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 31));

TEST(CollectiveCosts, BcastIsLogDepthInMessages) {
  const int p = 16;
  Machine m(unit_config(p));
  m.run([&](Comm& c) {
    std::vector<double> data(1, 1.0);
    c.bcast(data, 0, Group::world(p));
  });
  const SimTotals t = m.totals();
  // Binomial tree: p-1 edges total; no rank sends more than log2(p).
  EXPECT_DOUBLE_EQ(t.msgs_total, p - 1.0);
  EXPECT_LE(t.msgs_sent_max, std::log2(p) + 1e-9);
}

TEST(CollectiveCosts, RingAllgatherWordCount) {
  const int p = 8;
  const std::size_t k = 5;
  Machine m(unit_config(p));
  m.run([&](Comm& c) {
    std::vector<double> mine(k, 1.0);
    std::vector<double> out(k * p);
    c.allgather(mine, out, Group::world(p));
  });
  // Each rank sends (p-1) blocks of k words.
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_sent, (p - 1.0) * k);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).msgs_sent, p - 1.0);
}

TEST(CollectiveCosts, BruckBeatsDirectOnMessages) {
  const int p = 16;
  const std::size_t k = 4;
  MachineConfig cfg = unit_config(p);
  Machine direct(cfg);
  Machine bruck(cfg);
  auto run = [&](Machine& m, bool use_bruck) {
    m.run([&](Comm& c) {
      std::vector<double> in(k * p, 1.0);
      std::vector<double> out(k * p);
      if (use_bruck) {
        c.alltoall_bruck(in, out, Group::world(p));
      } else {
        c.alltoall(in, out, Group::world(p));
      }
    });
  };
  run(direct, false);
  run(bruck, true);
  EXPECT_DOUBLE_EQ(direct.totals().msgs_sent_max, p - 1.0);
  EXPECT_DOUBLE_EQ(bruck.totals().msgs_sent_max, std::log2(p));
  // ... at the price of more words.
  EXPECT_GT(bruck.totals().words_total, direct.totals().words_total);
}

TEST(SimGroups, SubgroupCollectivesDontCross) {
  // Two disjoint groups run reductions concurrently; results must not mix.
  const int p = 8;
  Machine m(unit_config(p));
  std::vector<double> results(static_cast<std::size_t>(p), -1.0);
  m.run([&](Comm& c) {
    const int half = c.rank() / 4;  // 0..3 -> group 0, 4..7 -> group 1
    Group g = Group::strided(half * 4, 4, 1);
    std::vector<double> mine = {static_cast<double>(c.rank())};
    c.allreduce_sum(mine, g);
    results[static_cast<std::size_t>(c.rank())] = mine[0];
  });
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], 0.0 + 1 + 2 + 3);
  for (int r = 4; r < 8; ++r) EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], 4.0 + 5 + 6 + 7);
}

TEST(SimMachine, ResetClearsCounters) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) { c.compute(5.0); });
  EXPECT_GT(m.makespan(), 0.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(m.rank_counters(0).flops, 0.0);
}

TEST(SimMachine, RejectsBadConfig) {
  MachineConfig cfg;
  cfg.p = 0;
  EXPECT_THROW(Machine m(cfg), invalid_argument_error);
  MachineConfig bad;
  bad.p = 1;
  bad.params.gamma_t = -1.0;
  EXPECT_THROW(Machine m2(bad), invalid_argument_error);
}

// --- Topology groups drive collectives correctly ---

TEST(SimTopo, Grid3DDepthReplicationAndReduce) {
  topo::Grid3D g(2, 2);  // q=2, c=2, p=8
  Machine m(unit_config(g.p()));
  std::vector<double> layer_sums(static_cast<std::size_t>(g.p()), 0.0);
  m.run([&](Comm& c) {
    const int i = g.row_of(c.rank());
    const int j = g.col_of(c.rank());
    const int l = g.layer_of(c.rank());
    std::vector<double> block = {l == 0 ? static_cast<double>(10 * i + j)
                                        : 0.0};
    // Replicate layer 0's block down the depth fiber.
    c.bcast(block, 0, g.depth_group(i, j));
    EXPECT_DOUBLE_EQ(block[0], 10.0 * i + j);
    // Each layer contributes its copy; reduce back to layer 0.
    std::vector<double> sum(1);
    c.reduce_sum(block, sum, 0, g.depth_group(i, j));
    if (l == 0) layer_sums[static_cast<std::size_t>(c.rank())] = sum[0];
  });
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(layer_sums[static_cast<std::size_t>(g.rank_of(i, j, 0))],
                       2.0 * (10 * i + j));
    }
  }
}


TEST(SimPointToPoint, RecvRejectsInvalidTag) {
  // recv validates tags exactly like send: user tags must stay below the
  // internal collective tag space.
  Machine m(unit_config(2));
  EXPECT_THROW(m.run([&](Comm& c) {
                 std::vector<double> buf(1);
                 if (c.rank() == 1) c.recv(0, buf, /*tag=*/-1);
               }),
               invalid_argument_error);
  Machine m2(unit_config(2));
  EXPECT_THROW(m2.run([&](Comm& c) {
                 std::vector<double> buf(1);
                 if (c.rank() == 1) c.recv(0, buf, /*tag=*/1 << 26);
               }),
               invalid_argument_error);
}

TEST(SimBuffer, MoveAssignmentKeepsAccountingExact) {
  Machine m(unit_config(1));
  m.run([&](Comm& c) {
    Buffer a = c.alloc(100);
    a[0] = 7.0;
    {
      Buffer b = c.alloc(40);
      EXPECT_EQ(c.counters().mem_words, 140u);
      // Assignment releases b's 40 words and adopts a's 100 (which stay
      // registered: they moved, they were never freed).
      b = std::move(a);
      EXPECT_EQ(c.counters().mem_words, 100u);
      EXPECT_EQ(b.size(), 100u);
      EXPECT_DOUBLE_EQ(b[0], 7.0);
      // Self-assignment must not unregister the words it still owns.
      Buffer& same = b;
      b = std::move(same);
      EXPECT_EQ(c.counters().mem_words, 100u);
      EXPECT_EQ(b.size(), 100u);
      EXPECT_DOUBLE_EQ(b[0], 7.0);
    }
    // b destroyed: its 100 words release exactly once.
    EXPECT_EQ(c.counters().mem_words, 0u);
    // `a` is moved-from; its destruction at end of scope is a no-op.
  });
  EXPECT_EQ(m.rank_counters(0).mem_highwater, 140u);
}

TEST(SimBuffer, MovedFromBufferDestructionIsNoOp) {
  Machine m(unit_config(1));
  m.run([&](Comm& c) {
    {
      Buffer a = c.alloc(8);
      {
        Buffer b = std::move(a);
        EXPECT_EQ(c.counters().mem_words, 8u);
      }
      // b released the words; destroying moved-from a must not underflow.
      EXPECT_EQ(c.counters().mem_words, 0u);
    }
    EXPECT_EQ(c.counters().mem_words, 0u);
  });
}

// Property test for the indexed mailbox: interleaved same-(src, tag)
// streams are FIFO, and distinct tags from the same source can be drained
// in any interleaving without disturbing each other.
class FifoStreams : public ::testing::TestWithParam<int> {};

TEST_P(FifoStreams, InterleavedStreamsStayFifoAndTagsIndependent) {
  const int p = GetParam();
  const int kMsgs = 16;  // per (src, tag) stream
  Machine m(unit_config(p));
  m.run([&](Comm& c) {
    // Interleave two tagged streams to every peer: message i carries
    // (sequence, stream id) so the receiver can check order and identity.
    std::vector<double> msg(2);
    for (int i = 0; i < kMsgs; ++i) {
      for (int d = 0; d < p; ++d) {
        if (d == c.rank()) continue;
        for (int tag = 0; tag < 2; ++tag) {
          msg[0] = static_cast<double>(i);
          msg[1] = static_cast<double>(2 * c.rank() + tag);
          c.send(d, msg, tag);
        }
      }
    }
    // Drain tag 1 before tag 0 at each step: cross-tag arrival order must
    // not matter, while each (src, tag) stream stays FIFO.
    std::vector<double> got(2);
    for (int s = 0; s < p; ++s) {
      if (s == c.rank()) continue;
      for (int i = 0; i < kMsgs; ++i) {
        c.recv(s, got, /*tag=*/1);
        EXPECT_DOUBLE_EQ(got[0], static_cast<double>(i));
        EXPECT_DOUBLE_EQ(got[1], static_cast<double>(2 * s + 1));
        c.recv(s, got, /*tag=*/0);
        EXPECT_DOUBLE_EQ(got[0], static_cast<double>(i));
        EXPECT_DOUBLE_EQ(got[1], static_cast<double>(2 * s));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(PairToLarge, FifoStreams,
                         ::testing::Values(2, 8, 32));

TEST(SimStress, TenThousandPendingMessagesExercisePool) {
  // One sender floods 12k messages across three tags before the receiver
  // drains a single one (mailbox queues grow and compact; the payload pool
  // then absorbs 12k buffers), and a second run on the same Machine reuses
  // the warmed pool.
  constexpr int kMsgs = 12000;
  Machine m(unit_config(2));
  for (int round = 0; round < 2; ++round) {
    m.run([&](Comm& c) {
      std::vector<double> buf(4, 0.0);
      if (c.rank() == 0) {
        for (int i = 0; i < kMsgs; ++i) {
          buf[0] = static_cast<double>(i);
          c.send(1, buf, i % 3);
        }
      } else {
        for (int tag = 2; tag >= 0; --tag) {
          for (int i = tag; i < kMsgs; i += 3) {
            c.recv(0, buf, tag);
            EXPECT_DOUBLE_EQ(buf[0], static_cast<double>(i));
          }
        }
      }
    });
    m.reset();
  }
}

// Construct PayloadPool(true) explicitly: release builds define NDEBUG, so
// the default-checked mode would silently vanish from these regressions.

TEST(PayloadPool, RecyclesStorageWithoutReallocating) {
  PayloadPool pool(true);
  const std::vector<double> data(32, 1.25);
  std::vector<double> a = pool.acquire(data);
  const double* storage = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.size(), 1u);
  std::vector<double> b = pool.acquire(data);
  EXPECT_EQ(b.data(), storage);  // same capacity, no fresh allocation
  EXPECT_EQ(b, data);            // poison fully overwritten by the copy
  EXPECT_EQ(pool.size(), 0u);
}

TEST(PayloadPool, WriteThroughStaleHandleIsCaughtOnNextAcquire) {
  PayloadPool pool(true);
  const std::vector<double> data(16, 2.0);
  std::vector<double> buf = pool.acquire(data);
  double* stale = buf.data();
  pool.release(std::move(buf));
  // The storage now sits poisoned in the free list; a write through a
  // stale handle is exactly the use-after-return bug the guard exists for.
  stale[3] = 42.0;
  EXPECT_THROW((void)pool.acquire(data), internal_error);
}

TEST(PayloadPool, UncheckedModeToleratesStaleWrites) {
  PayloadPool pool(false);
  EXPECT_FALSE(pool.checked());
  const std::vector<double> data(16, 2.0);
  std::vector<double> buf = pool.acquire(data);
  double* stale = buf.data();
  pool.release(std::move(buf));
  stale[0] = 42.0;  // storage is owned by the pool, so this stays defined
  EXPECT_EQ(pool.acquire(data), data);
}

TEST(PayloadPool, ReleasingAMovedFromHandleIsBenign) {
  // The realistic double-release: release(std::move(v)) called twice on
  // the same lvalue. The second call sees an empty vector (no storage), so
  // the double-return guard must not fire.
  PayloadPool pool(true);
  const std::vector<double> data(8, 1.0);
  std::vector<double> v = pool.acquire(data);
  pool.release(std::move(v));
  EXPECT_NO_THROW(pool.release(std::move(v)));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
}  // namespace alge::sim
