// Tests for the observability layer (src/obs): Chrome trace_event export
// (streaming sink + golden-file stability of a fixed p=4 matmul run), the
// Eq. (2) energy ledger (the load-bearing property: (rank, phase) cells sum
// EXACTLY — 1-ulp-scale — to Machine::energy(), across real machine
// parameter sets from machines/db), and the bench-JSON normalizer/differ
// behind tools/bench_diff and the CI regression gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "machines/db.hpp"
#include "obs/bench_metrics.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/energy_ledger.hpp"
#include "sim/comm.hpp"
#include "sim/group.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

#ifndef ALGE_GOLDEN_DIR
#define ALGE_GOLDEN_DIR "."
#endif

namespace alge::obs {
namespace {

// A small fixed workload touching every event kind: phased compute (skewed
// per rank so idle time exists), a ring exchange, buffer registration, and
// an allreduce.
void demo_program(sim::Comm& c) {
  const sim::Group world = sim::Group::world(c.size());
  sim::Buffer buf = c.alloc(16);
  {
    auto ph = c.phase("local-work");
    c.compute(50.0 * (c.rank() + 1));
  }
  {
    auto ph = c.phase("exchange");
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    sim::Buffer in = c.alloc(16);
    c.sendrecv(next, buf.span(), prev, in.span());
  }
  {
    auto ph = c.phase("reduce");
    std::vector<double> v(8, 1.0);
    c.allreduce_sum(v, world);
  }
}

sim::MachineConfig ledger_config(int p, const core::MachineParams& mp) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = mp;
  cfg.enable_ledger = true;
  return cfg;
}

// ------------------------------------------------------- energy ledger ----

// Relative tolerance for "equal up to floating-point reassociation": the
// ledger sums the same products in a different order than Machine::energy().
void expect_close(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  EXPECT_LE(std::abs(a - b), 1e-12 * scale) << a << " vs " << b;
}

TEST(EnergyLedger, SumsToMachineEnergyUnitParams) {
  sim::Machine m(ledger_config(4, core::MachineParams::unit()));
  m.run(demo_program);
  const EnergyLedger led = build_energy_ledger(m);
  expect_close(led.total(), m.energy().total());
}

TEST(EnergyLedger, SumsToMachineEnergyAcrossMachineDb) {
  // Real parameter sets: the Jaketown case study and a few Table II rows
  // (which only define γt/γe; graft them onto the case-study's network and
  // memory terms so every Eq. (2) term is live).
  std::vector<core::MachineParams> params_sets;
  params_sets.push_back(machines::CaseStudyMachine().params());
  for (std::size_t i : {std::size_t{0}, std::size_t{5}, std::size_t{10}}) {
    const auto& spec = machines::table2_processors().at(i);
    core::MachineParams mp = machines::CaseStudyMachine().params();
    mp.gamma_t = spec.gamma_t();
    mp.gamma_e = spec.gamma_e();
    params_sets.push_back(mp);
  }
  for (const auto& mp : params_sets) {
    for (int p : {2, 4, 8}) {
      sim::Machine m(ledger_config(p, mp));
      m.run(demo_program);
      const EnergyLedger led = build_energy_ledger(m);
      expect_close(led.total(), m.energy().total());
      // Explicit-memory convention too (the paper's "pay for what you hold").
      const double M = 4096.0;
      expect_close(build_energy_ledger(m, M).total(),
                   m.energy_with_memory(M).total());
    }
  }
}

TEST(EnergyLedger, RankAndPhaseMarginalsAgree) {
  sim::Machine m(ledger_config(4, core::MachineParams::unit()));
  m.run(demo_program);
  const EnergyLedger led = build_energy_ledger(m);
  double by_rank = 0.0;
  for (int r = 0; r < led.p(); ++r) by_rank += led.rank_total(r).total();
  double by_phase = 0.0;
  for (std::size_t ph = 0; ph < led.phases().size(); ++ph) {
    by_phase += led.phase_total(static_cast<int>(ph)).total();
  }
  expect_close(by_rank, led.total());
  expect_close(by_phase, led.total());
}

TEST(EnergyLedger, PhasesAttributeWorkWhereItHappened) {
  sim::Machine m(ledger_config(2, core::MachineParams::unit()));
  m.run([](sim::Comm& c) {
    {
      auto ph = c.phase("flops-only");
      c.compute(100.0);
    }
    {
      auto ph = c.phase("comm-only");
      std::vector<double> v(8, 1.0);
      if (c.rank() == 0) {
        c.send(1, v);
      } else {
        c.recv(0, v);
      }
    }
  });
  const auto& names = m.phase_names();
  int flops_id = -1;
  int comm_id = -1;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "flops-only") flops_id = static_cast<int>(i);
    if (names[i] == "comm-only") comm_id = static_cast<int>(i);
  }
  ASSERT_GE(flops_id, 0);
  ASSERT_GE(comm_id, 0);
  const EnergyLedger led = build_energy_ledger(m);
  EXPECT_DOUBLE_EQ(led.phase_total(flops_id).counters.flops, 200.0);
  EXPECT_DOUBLE_EQ(led.phase_total(flops_id).counters.words_sent, 0.0);
  EXPECT_DOUBLE_EQ(led.phase_total(comm_id).counters.flops, 0.0);
  EXPECT_DOUBLE_EQ(led.phase_total(comm_id).counters.words_sent, 8.0);
  // Receiver's wait shows up as idle time inside the comm phase.
  EXPECT_GT(led.cell(1, comm_id).counters.idle, 0.0);
}

TEST(EnergyLedger, NestedPhasesRestoreTheEnclosingPhase) {
  sim::Machine m(ledger_config(1, core::MachineParams::unit()));
  m.run([](sim::Comm& c) {
    auto outer = c.phase("outer");
    c.compute(1.0);
    {
      auto inner = c.phase("inner");
      c.compute(10.0);
    }
    c.compute(100.0);  // must land back in "outer"
  });
  const auto& names = m.phase_names();
  int outer_id = -1;
  int inner_id = -1;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "outer") outer_id = static_cast<int>(i);
    if (names[i] == "inner") inner_id = static_cast<int>(i);
  }
  ASSERT_GE(outer_id, 0);
  ASSERT_GE(inner_id, 0);
  EXPECT_DOUBLE_EQ(m.phase_counters(0)[static_cast<std::size_t>(outer_id)].flops,
                   101.0);
  EXPECT_DOUBLE_EQ(m.phase_counters(0)[static_cast<std::size_t>(inner_id)].flops,
                   10.0);
}

TEST(EnergyLedger, TailPhaseClosesTheMakespanGap) {
  // Rank 0 finishes early; the tail cell must hold T - clock_0 so the
  // rank's ledger time sums to the machine makespan.
  sim::Machine m(ledger_config(2, core::MachineParams::unit()));
  m.run([](sim::Comm& c) { c.compute(c.rank() == 0 ? 1.0 : 1000.0); });
  const EnergyLedger led = build_energy_ledger(m);
  ASSERT_FALSE(led.phases().empty());
  EXPECT_EQ(led.phases().back(), "(tail)");
  const int tail = static_cast<int>(led.phases().size()) - 1;
  for (int r = 0; r < 2; ++r) {
    double t = 0.0;
    for (std::size_t ph = 0; ph < led.phases().size(); ++ph) {
      t += led.cell(r, static_cast<int>(ph)).counters.time;
    }
    expect_close(t, m.makespan());
  }
  EXPECT_GT(led.cell(0, tail).counters.time,
            led.cell(1, tail).counters.time);
}

TEST(EnergyLedger, RequiresLedgerEnabled) {
  sim::MachineConfig cfg;
  cfg.p = 2;
  cfg.params = core::MachineParams::unit();
  sim::Machine m(cfg);
  m.run([](sim::Comm& c) { c.compute(1.0); });
  EXPECT_THROW(build_energy_ledger(m), invalid_argument_error);
}

TEST(EnergyLedger, JsonAndRenderContainThePhases) {
  sim::Machine m(ledger_config(2, core::MachineParams::unit()));
  m.run(demo_program);
  const EnergyLedger led = build_energy_ledger(m);
  const json::Value v = led.to_json();
  EXPECT_DOUBLE_EQ(v.at("p").as_double(), 2.0);
  const std::string table = led.render();
  EXPECT_NE(table.find("local-work"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

// -------------------------------------------------------- chrome trace ----

sim::MachineConfig trace_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  cfg.enable_trace = true;
  return cfg;
}

TEST(ChromeTrace, ExportParsesAndCoversEveryTrack) {
  sim::Machine m(trace_config(4));
  m.run(demo_program);
  std::ostringstream out;
  write_chrome_trace(m.trace(), m.p(), out);
  const json::Value doc = json::parse(out.str());
  const auto& evs = doc.at("traceEvents").as_array();
  ASSERT_GT(evs.size(), 0u);
  bool saw_compute = false, saw_send = false, saw_coll = false,
       saw_phase = false, saw_mem = false, saw_meta = false;
  for (const json::Value& e : evs) {
    const std::string name = e.at("name").as_string();
    const std::string ph = e.at("ph").as_string();
    if (name == "compute") saw_compute = true;
    if (name == "send") saw_send = true;
    if (name == "allreduce_sum") saw_coll = true;
    if (name == "exchange") saw_phase = true;
    if (name == "M" && ph == "C") saw_mem = true;
    if (ph == "M") saw_meta = true;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_coll);
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_mem);
  EXPECT_TRUE(saw_meta);
}

TEST(ChromeTrace, StreamingSinkSeesEventsWithoutStoringThem) {
  sim::Machine m(trace_config(2));
  std::ostringstream out;
  ChromeTraceWriter writer(out, 2);
  m.set_trace_sink(&writer, /*keep_events=*/false);
  m.run([](sim::Comm& c) {
    std::vector<double> v(4, 1.0);
    if (c.rank() == 0) {
      c.send(1, v);
    } else {
      c.recv(0, v);
    }
    c.compute(10.0);
  });
  writer.finish();
  EXPECT_TRUE(m.trace().empty());  // nothing retained in memory
  const json::Value doc = json::parse(out.str());
  EXPECT_GT(doc.at("traceEvents").as_array().size(), 4u);  // metadata + spans
}

TEST(ChromeTrace, CounterTracksAreCumulative) {
  sim::Machine m(trace_config(1));
  m.run([](sim::Comm& c) {
    c.compute(5.0);
    c.compute(7.0);
  });
  std::ostringstream out;
  write_chrome_trace(m.trace(), 1, out);
  const json::Value doc = json::parse(out.str());
  const auto& evs = doc.at("traceEvents").as_array();
  std::vector<double> f_samples;
  for (const json::Value& e : evs) {
    if (e.at("ph").as_string() == "C" && e.at("name").as_string() == "F") {
      f_samples.push_back(e.at("args").at("F").as_double());
    }
  }
  ASSERT_EQ(f_samples.size(), 2u);
  EXPECT_DOUBLE_EQ(f_samples[0], 5.0);
  EXPECT_DOUBLE_EQ(f_samples[1], 12.0);
}

TEST(ChromeTrace, FileWriterRejectsUnopenablePath) {
  sim::Machine m(trace_config(1));
  m.run([](sim::Comm& c) { c.compute(1.0); });
  EXPECT_THROW(
      write_chrome_trace_file(m.trace(), 1, "/nonexistent-dir/x/y.json"),
      invalid_argument_error);
}

// The export of a fixed engine run is byte-stable: the golden file is the
// contract that trace output (event order, numeric formatting, track
// naming) does not drift silently. Regenerate deliberately with
// ALGE_UPDATE_GOLDEN=1 after an intentional format change.
TEST(ChromeTrace, GoldenTraceOfP4MatmulIsStable) {
  engine::ExperimentSpec spec;
  spec.alg = engine::Alg::kMm25d;
  spec.params = core::MachineParams::unit();
  spec.n = 4;
  spec.q = 2;
  spec.c = 1;
  sim::Trace trace;
  const engine::ExperimentResult r = engine::execute_traced(spec, &trace);
  ASSERT_EQ(r.p, 4);
  std::ostringstream out;
  write_chrome_trace(trace, r.p, out);

  const std::string golden_path =
      std::string(ALGE_GOLDEN_DIR) + "/chrome_trace_p4_matmul.json";
  if (std::getenv("ALGE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(golden_path);
    ASSERT_TRUE(f.is_open()) << golden_path;
    f << out.str();
    GTEST_SKIP() << "golden file regenerated: " << golden_path;
  }
  std::ifstream f(golden_path);
  ASSERT_TRUE(f.is_open())
      << golden_path << " missing; run with ALGE_UPDATE_GOLDEN=1";
  std::ostringstream want;
  want << f.rdbuf();
  EXPECT_EQ(out.str(), want.str())
      << "Chrome trace export changed for the fixed p=4 matmul run. If "
         "intentional, regenerate with ALGE_UPDATE_GOLDEN=1.";
}

TEST(ChromeTrace, ExecuteTracedMatchesUntracedResult) {
  engine::ExperimentSpec spec;
  spec.alg = engine::Alg::kMm25d;
  spec.params = core::MachineParams::unit();
  spec.n = 8;
  spec.q = 2;
  spec.c = 1;
  const engine::ExperimentResult plain = engine::execute(spec);
  sim::Trace trace;
  const engine::ExperimentResult traced = engine::execute_traced(spec, &trace);
  EXPECT_EQ(plain, traced);  // observation must not perturb the experiment
  EXPECT_FALSE(trace.events().empty());
}

// ------------------------------------------------------- bench metrics ----

TEST(BenchMetrics, DirectionHeuristics) {
  EXPECT_EQ(metric_direction("benchmarks.BM_PingPong.real_time_ns"), -1);
  EXPECT_EQ(metric_direction("engine.mm.wall_seconds"), -1);
  EXPECT_EQ(metric_direction("profile.queue_wait_seconds"), -1);
  EXPECT_EQ(metric_direction("items_per_second"), +1);
  EXPECT_EQ(metric_direction("engine.mm.jobs_per_sec"), +1);
  EXPECT_EQ(metric_direction("speedup"), +1);
  EXPECT_EQ(metric_direction("engine.mm.cache_hits"), +1);
  EXPECT_EQ(metric_direction("engine.mm.jobs"), 0);
  EXPECT_EQ(metric_direction("threads"), 0);
}

TEST(BenchMetrics, NormalizesGoogleBenchmarkFormat) {
  const json::Value doc = json::parse(R"({
    "context": {"date": "2026", "num_cpus": 8},
    "benchmarks": [
      {"name": "BM_X/16", "real_time": 2.0, "cpu_time": 1.5,
       "time_unit": "us", "items_per_second": 5e6},
      {"name": "BM_Y", "real_time": 3.0, "time_unit": "ms"}
    ]})");
  const auto metrics = normalize_bench_json(doc);
  double x_ns = -1.0, y_ns = -1.0, x_items = -1.0;
  for (const auto& m : metrics) {
    if (m.name == "BM_X/16.real_time_ns") x_ns = m.value;
    if (m.name == "BM_Y.real_time_ns") y_ns = m.value;
    if (m.name == "BM_X/16.items_per_second") x_items = m.value;
    EXPECT_EQ(m.name.find("context"), std::string::npos)
        << "context must not leak: " << m.name;
  }
  EXPECT_DOUBLE_EQ(x_ns, 2000.0);     // 2 us
  EXPECT_DOUBLE_EQ(y_ns, 3000000.0);  // 3 ms
  EXPECT_DOUBLE_EQ(x_items, 5e6);
}

TEST(BenchMetrics, NormalizesEngineHistoryLastRecordWins) {
  const json::Value doc = json::parse(R"([
    {"bench": "mm", "jobs": 8, "wall_seconds": 2.0, "unix_time": 111},
    {"bench": "val", "jobs": 3, "wall_seconds": 1.0, "unix_time": 222},
    {"bench": "mm", "jobs": 8, "wall_seconds": 1.5, "unix_time": 333}
  ])");
  const auto metrics = normalize_bench_json(doc);
  double mm_wall = -1.0;
  bool saw_time = false;
  for (const auto& m : metrics) {
    if (m.name == "engine.mm.wall_seconds") mm_wall = m.value;
    if (m.name.find("unix_time") != std::string::npos) saw_time = true;
  }
  EXPECT_DOUBLE_EQ(mm_wall, 1.5);  // the later record replaced the first
  EXPECT_FALSE(saw_time);          // wall-clock keys dropped
}

TEST(BenchMetrics, NormalizesBaselineTableToBareBenchmarkNames) {
  // The committed BENCH_sim.json shape: the "optimized" record is the
  // performance contract and must come out under the bare benchmark name so
  // it compares against a fresh google-benchmark run of the same binary.
  const json::Value doc = json::parse(
      R"({"description": "text ignored",
          "benchmarks": {
            "BM_A/16": {"baseline": {"real_time_ns": 100.0},
                        "optimized": {"real_time_ns": 10.0,
                                      "items_per_second": 4.0},
                        "speedup": 10.0},
            "BM_B": {"real_time_ns": 7.0}}})");
  const auto metrics = normalize_bench_json(doc);
  ASSERT_EQ(metrics.size(), 3u);  // sorted: the flatten is deterministic
  EXPECT_EQ(metrics[0].name, "BM_A/16.items_per_second");
  EXPECT_DOUBLE_EQ(metrics[0].value, 4.0);
  EXPECT_EQ(metrics[1].name, "BM_A/16.real_time_ns");
  EXPECT_DOUBLE_EQ(metrics[1].value, 10.0);
  EXPECT_EQ(metrics[2].name, "BM_B.real_time_ns");  // no "optimized": whole
}

TEST(BenchMetrics, BaselineTableComparesAgainstGoogleBenchmarkOutput) {
  const json::Value baseline = json::parse(
      R"({"benchmarks": {"BM_A": {"optimized": {"real_time_ns": 100.0}}}})");
  const json::Value fresh = json::parse(
      R"({"benchmarks": [{"name": "BM_A", "real_time": 250.0,
                          "time_unit": "ns"}]})");
  const BenchDiff d = diff_bench_json(baseline, fresh, 0.5);
  ASSERT_EQ(d.metrics.size(), 1u);  // the formats meet on a common name
  EXPECT_EQ(d.metrics[0].name, "BM_A.real_time_ns");
  EXPECT_TRUE(d.metrics[0].regression);  // 2.5x slower than committed
}

TEST(BenchMetrics, DiffFlagsRegressionsByDirection) {
  const json::Value base = json::parse(
      R"({"a_time_ns": 100.0, "b_per_second": 50.0, "count": 7.0})");
  const json::Value slower = json::parse(
      R"({"a_time_ns": 150.0, "b_per_second": 20.0, "count": 9.0})");
  const BenchDiff d = diff_bench_json(base, slower, 0.10);
  EXPECT_EQ(d.regressions, 2);  // time rose 50%, throughput fell 60%
  for (const auto& m : d.metrics) {
    if (m.name == "count") {
      EXPECT_FALSE(m.regression);  // neutral direction never regresses
    }
  }
  // Self-compare is always clean.
  EXPECT_EQ(diff_bench_json(base, base, 0.10).regressions, 0);
  // A generous threshold forgives the change.
  EXPECT_EQ(diff_bench_json(base, slower, 0.70).regressions, 0);
  // Improvements never count as regressions.
  const json::Value faster = json::parse(
      R"({"a_time_ns": 50.0, "b_per_second": 80.0, "count": 7.0})");
  EXPECT_EQ(diff_bench_json(base, faster, 0.10).regressions, 0);
}

TEST(BenchMetrics, DiffTracksAppearingAndDisappearingMetrics) {
  const json::Value base = json::parse(R"({"old_ns": 1.0, "both_ns": 2.0})");
  const json::Value cur = json::parse(R"({"new_ns": 3.0, "both_ns": 2.0})");
  const BenchDiff d = diff_bench_json(base, cur, 0.10);
  ASSERT_EQ(d.only_base.size(), 1u);
  EXPECT_EQ(d.only_base[0], "old_ns");
  ASSERT_EQ(d.only_current.size(), 1u);
  EXPECT_EQ(d.only_current[0], "new_ns");
  EXPECT_EQ(d.regressions, 0);
}

TEST(BenchMetrics, RenderNamesTheOffendingMetric) {
  const json::Value base = json::parse(R"({"slow_path_ns": 100.0})");
  const json::Value cur = json::parse(R"({"slow_path_ns": 250.0})");
  const BenchDiff d = diff_bench_json(base, cur, 0.10);
  const std::string report = render_diff(d, 0.10);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);
  EXPECT_NE(report.find("slow_path_ns"), std::string::npos);
}

// ----------------------------------------------------- engine profiling ----

TEST(EngineProfile, SweepPopulatesProfileBlock) {
  std::vector<engine::ExperimentSpec> specs;
  for (int n : {4, 8, 12, 16}) {
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kMm25d;
    s.params = core::MachineParams::unit();
    s.n = n;
    s.q = 2;
    s.c = 1;
    specs.push_back(s);
  }
  engine::SweepOptions opts;
  opts.threads = 2;
  engine::SweepRunner runner(opts);
  runner.run(specs);
  const engine::SweepProfile& prof = runner.stats().profile;
  EXPECT_GT(prof.run_seconds, 0.0);
  EXPECT_GE(prof.run_max_seconds, prof.run_seconds / 4.0);
  EXPECT_LE(prof.run_max_seconds, prof.run_seconds);
  EXPECT_GT(prof.pool_busy_seconds, 0.0);
  EXPECT_GT(prof.pool_occupancy, 0.0);
  EXPECT_LE(prof.pool_occupancy, 1.0 + 1e-9);
  EXPECT_GE(prof.queue_wait_seconds, 0.0);
  EXPECT_GE(prof.queue_wait_max_seconds, 0.0);

  // Second run over the same specs: everything cache-hits; lookups are
  // counted, simulation time is zero.
  runner.run(specs);
  EXPECT_EQ(runner.stats().cache_hits, 4);
  EXPECT_DOUBLE_EQ(runner.stats().profile.run_seconds, 0.0);
  EXPECT_GE(runner.stats().profile.cache_lookup_seconds, 0.0);
}

}  // namespace
}  // namespace alge::obs
