// Golden-input coverage for the bench_diff CLI (tools/bench_diff_main.hpp)
// and the obs::metric_direction heuristics it gates on. Exercises all three
// exit codes — 0 clean, 1 regression, 2 usage/IO error — across the
// bench JSON formats the repo produces.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_metrics.hpp"
#include "support/json.hpp"
#include "../tools/bench_diff_main.hpp"

namespace {

using alge::tools::run_bench_diff;

std::string golden(const std::string& name) {
  return std::string(ALGE_GOLDEN_DIR) + "/bench_diff/" + name;
}

struct CliResult {
  int rc;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  CliResult r;
  r.rc = run_bench_diff(args, &r.out, &r.err);
  return r;
}

// ---------------------------------------------------------------- exit 0

TEST(BenchDiffCli, CleanPairWithinThresholdExitsZero) {
  const CliResult r = run({golden("sim_base.json"), golden("sim_clean.json")});
  EXPECT_EQ(r.rc, 0);
  EXPECT_TRUE(r.err.empty()) << r.err;
  EXPECT_EQ(r.out.find("REGRESSION"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("0 regression(s)"), std::string::npos) << r.out;
}

TEST(BenchDiffCli, ImprovementsExitZeroAndAreReported) {
  const CliResult r =
      run({golden("sim_base.json"), golden("sim_improved.json")});
  EXPECT_EQ(r.rc, 0);
  // Time halved and throughput doubled: both directions improved.
  EXPECT_NE(r.out.find("improved"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("2 improvement(s)"), std::string::npos) << r.out;
}

TEST(BenchDiffCli, RenamedMetricIsReportedButNotARegression) {
  const CliResult r =
      run({golden("sim_base.json"), golden("sim_renamed.json")});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("removed     BM_fft.real_time_ns"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("added       BM_fft2.real_time_ns"), std::string::npos)
      << r.out;
}

TEST(BenchDiffCli, GoogleBenchmarkTimeUnitsAreNormalized) {
  // Base reports in us, current the same values in ns; after unit
  // normalization nothing changed.
  const CliResult r =
      run({golden("gbench_base.json"), golden("gbench_current.json")});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("3 metric(s) compared"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("0 regression(s), 0 improvement(s)"),
            std::string::npos)
      << r.out;
}

TEST(BenchDiffCli, EngineHistoryComparesLatestRecordOnly) {
  // Base history has two records for sweep_mm; only the last one (wall 8.0,
  // hits 7) is the comparison point, so current (7.5, 9) is clean.
  const CliResult r =
      run({golden("engine_base.json"), golden("engine_current.json")});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("2 metric(s) compared"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("0 regression(s)"), std::string::npos) << r.out;
}

TEST(BenchDiffCli, VerboseListsUnchangedMetrics) {
  const CliResult r = run(
      {golden("sim_base.json"), golden("sim_clean.json"), "--verbose"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("ok "), std::string::npos) << r.out;
}

TEST(BenchDiffCli, LooseThresholdSilencesRegressions) {
  const CliResult r = run({golden("sim_base.json"),
                           golden("sim_regressed.json"), "--threshold=0.60"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("0 regression(s)"), std::string::npos) << r.out;
}

// ---------------------------------------------------------------- exit 1

TEST(BenchDiffCli, RegressionsExitOne) {
  const CliResult r =
      run({golden("sim_base.json"), golden("sim_regressed.json")});
  EXPECT_EQ(r.rc, 1);
  // Time +50% and throughput -40% both regress; the neutral "iterations"
  // counter jumping 8 -> 1000 must not.
  EXPECT_NE(r.out.find("REGRESSION"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("2 regression(s)"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("REGRESSION  BM_mm25d.iterations"), std::string::npos)
      << r.out;
}

// ---------------------------------------------------------------- exit 2

TEST(BenchDiffCli, MissingPathsAreAUsageError) {
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{},
        std::vector<std::string>{golden("sim_base.json")},
        std::vector<std::string>{golden("sim_base.json"),
                                 golden("sim_clean.json"), "extra.json"}}) {
    CliResult r;
    r.rc = run_bench_diff(args, &r.out, &r.err);
    EXPECT_EQ(r.rc, 2);
    EXPECT_NE(r.err.find("usage:"), std::string::npos) << r.err;
  }
}

TEST(BenchDiffCli, UnknownFlagIsAUsageError) {
  const CliResult r = run(
      {golden("sim_base.json"), golden("sim_clean.json"), "--frobnicate"});
  EXPECT_EQ(r.rc, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos) << r.err;
}

TEST(BenchDiffCli, BadThresholdIsAUsageError) {
  for (const char* flag : {"--threshold=abc", "--threshold=-0.5"}) {
    const CliResult r =
        run({golden("sim_base.json"), golden("sim_clean.json"), flag});
    EXPECT_EQ(r.rc, 2) << flag;
    EXPECT_NE(r.err.find("usage:"), std::string::npos) << r.err;
  }
}

TEST(BenchDiffCli, UnreadableFileExitsTwo) {
  const CliResult r =
      run({golden("no_such_file.json"), golden("sim_clean.json")});
  EXPECT_EQ(r.rc, 2);
  EXPECT_NE(r.err.find("cannot read"), std::string::npos) << r.err;
}

TEST(BenchDiffCli, MalformedJsonExitsTwo) {
  const CliResult r =
      run({golden("sim_base.json"), golden("malformed.json")});
  EXPECT_EQ(r.rc, 2);
  EXPECT_NE(r.err.find("not valid JSON"), std::string::npos) << r.err;
}

TEST(BenchDiffCli, NullSinksAreAccepted) {
  EXPECT_EQ(run_bench_diff({golden("sim_base.json"), golden("sim_clean.json")},
                           nullptr, nullptr),
            0);
  EXPECT_EQ(run_bench_diff({}, nullptr, nullptr), 2);
}

// ------------------------------------------------- direction heuristics

TEST(MetricDirection, ThroughputLikeNamesAreMoreIsBetter) {
  using alge::obs::metric_direction;
  EXPECT_EQ(metric_direction("BM_mm.items_per_second"), 1);
  EXPECT_EQ(metric_direction("bytes_per_sec"), 1);
  EXPECT_EQ(metric_direction("BM_mm25d.speedup"), 1);
  EXPECT_EQ(metric_direction("engine.pool.occupancy"), 1);
  EXPECT_EQ(metric_direction("engine.sweep.cache_hits"), 1);
}

TEST(MetricDirection, TimeLikeNamesAreLessIsBetter) {
  using alge::obs::metric_direction;
  EXPECT_EQ(metric_direction("BM_mm.real_time_ns"), -1);
  EXPECT_EQ(metric_direction("engine.sweep.wall_seconds"), -1);
  EXPECT_EQ(metric_direction("rank0.idle_wait"), -1);
  EXPECT_EQ(metric_direction("engine.sweep.cache_miss"), -1);
  EXPECT_EQ(metric_direction("makespan_ns"), -1);
}

TEST(MetricDirection, ThroughputRuleWinsOverEmbeddedTimeWords) {
  // "items_per_second" contains "second" but must read as throughput.
  EXPECT_EQ(alge::obs::metric_direction("items_per_second"), 1);
}

TEST(MetricDirection, NeutralNamesNeverGate) {
  using alge::obs::metric_direction;
  EXPECT_EQ(metric_direction("iterations"), 0);
  EXPECT_EQ(metric_direction("BM_mm.flops"), 0);
  EXPECT_EQ(metric_direction("words_sent"), 0);
}

TEST(GhostNormalizer, EmitsSpeedupAndSimFieldsSkipsWallClock) {
  const alge::json::Value doc = alge::json::parse(R"({
    "bench": "ghost",
    "results": [
      {"name": "mm n=4096", "p": 64, "full_seconds": 24.1,
       "ghost_seconds": 0.0002, "speedup": 120000.0,
       "cost_identical": true, "makespan": 2156527616.0},
      {"name": "frontier", "p": 4096, "ghost_seconds": 0.35,
       "makespan": 2164262144.0}
    ]})");
  const std::vector<alge::obs::Metric> m =
      alge::obs::normalize_bench_json(doc);
  std::vector<std::string> names;
  for (const auto& metric : m) names.push_back(metric.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"ghost.frontier.makespan",
                                      "ghost.frontier.p",
                                      "ghost.mm n=4096.makespan",
                                      "ghost.mm n=4096.p",
                                      "ghost.mm n=4096.speedup"}));
  // Speedup gates as more-is-better; the raw wall-clock fields (machine
  // noise) never become metrics.
  EXPECT_EQ(alge::obs::metric_direction("ghost.mm n=4096.speedup"), 1);
}

TEST(ServeNormalizer, EmitsRatesAndQuantilesSkipsRunScaledCounts) {
  const alge::json::Value doc = alge::json::parse(R"({
    "bench": "serve",
    "results": [
      {"name": "closed_form_pipelined", "queries": 1392640,
       "seconds": 2.0004, "queries_per_sec": 696201.0,
       "p50_us": 126.1, "p99_us": 228.0, "max_us": 3879.1},
      {"name": "ghost_miss", "queries": 32, "seconds": 0.0029,
       "queries_per_sec": 11018.7, "p50_us": 58.7, "p99_us": 146.6,
       "max_us": 261.0}
    ]})");
  const std::vector<alge::obs::Metric> m =
      alge::obs::normalize_bench_json(doc);
  std::vector<std::string> names;
  for (const auto& metric : m) names.push_back(metric.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{
                "serve.closed_form_pipelined.max_us",
                "serve.closed_form_pipelined.p50_us",
                "serve.closed_form_pipelined.p99_us",
                "serve.closed_form_pipelined.queries_per_sec",
                "serve.ghost_miss.max_us", "serve.ghost_miss.p50_us",
                "serve.ghost_miss.p99_us",
                "serve.ghost_miss.queries_per_sec"}));
}

TEST(ServeNormalizer, DirectionsGateThroughputUpLatencyDown) {
  // Throughput regresses when it drops; latency quantiles regress when
  // they grow. "per_sec" wins over the "_us"/"p50" latency rules.
  EXPECT_EQ(alge::obs::metric_direction(
                "serve.closed_form_pipelined.queries_per_sec"),
            1);
  EXPECT_EQ(alge::obs::metric_direction("serve.ghost_miss.p50_us"), -1);
  EXPECT_EQ(alge::obs::metric_direction("serve.ghost_miss.p99_us"), -1);
  EXPECT_EQ(alge::obs::metric_direction("serve.ghost_miss.max_us"), -1);

  const alge::json::Value base = alge::json::parse(
      R"({"bench":"serve","results":[{"name":"hot","queries_per_sec":
          600000.0,"p99_us":100.0}]})");
  const alge::json::Value cur = alge::json::parse(
      R"({"bench":"serve","results":[{"name":"hot","queries_per_sec":
          100000.0,"p99_us":700.0}]})");
  const alge::obs::BenchDiff d = alge::obs::diff_bench_json(base, cur, 0.5);
  EXPECT_EQ(d.regressions, 2);
}

// ------------------------------------------------- navigator normalizer

TEST(NavigatorNormalizer, EmitsFrontierMetricsSkipsWallClockAndSentinels) {
  std::ifstream in(golden("navigator_base.json"));
  std::ostringstream buf;
  buf << in.rdbuf();
  const alge::json::Value doc = alge::json::parse(buf.str());
  const std::vector<alge::obs::Metric> m =
      alge::obs::normalize_bench_json(doc);
  auto has = [&](const char* name) {
    for (const alge::obs::Metric& x : m) {
      if (x.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("navigator.nbody gen=0.frontier_area"));
  EXPECT_TRUE(has("navigator.nbody gen=0.robust_fraction"));
  EXPECT_TRUE(has("navigator.nbody gen=0.fault_energy_inflation"));
  EXPECT_TRUE(has("navigator.nbody gen=2.crossover_generations"));
  // Wall clock never compares.
  EXPECT_FALSE(has("navigator.nbody gen=0.navigate_seconds"));
}

TEST(NavigatorNormalizer, DirectionsGateFrontierDownRobustnessUp) {
  using alge::obs::metric_direction;
  EXPECT_EQ(metric_direction("navigator.nbody gen=0.frontier_area"), -1);
  EXPECT_EQ(metric_direction("navigator.nbody gen=0.crossover_generations"),
            -1);
  EXPECT_EQ(
      metric_direction("navigator.nbody gen=0.fault_energy_inflation"), -1);
  EXPECT_EQ(metric_direction("navigator.nbody gen=0.min_energy_joules"), -1);
  EXPECT_EQ(metric_direction("navigator.nbody gen=0.robust_fraction"), 1);
  EXPECT_EQ(
      metric_direction("navigator.nbody gen=0.gflops_per_watt_at_opt"), 1);
  // Counts and configuration stay neutral.
  EXPECT_EQ(metric_direction("navigator.nbody gen=0.frontier_points"), 0);
  EXPECT_EQ(metric_direction("navigator.nbody gen=0.generation"), 0);
}

TEST(BenchDiffCli, NavigatorFrontierRegressionsExitOne) {
  const CliResult r = run(
      {golden("navigator_base.json"), golden("navigator_regressed.json")});
  EXPECT_EQ(r.rc, 1);
  // frontier_area +50% (lower-better) and robust_fraction -50%
  // (higher-better) both regress.
  EXPECT_NE(r.out.find("REGRESSION  navigator.nbody gen=0.frontier_area"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("REGRESSION  navigator.nbody gen=0.robust_fraction"),
            std::string::npos)
      << r.out;
  // The faulted crossover went to the -1 "unreachable" sentinel: it must
  // surface as a removed metric, not as a -120% "improvement".
  EXPECT_NE(
      r.out.find("removed     navigator.nbody gen=0.crossover_generations_"
                 "faulted"),
      std::string::npos)
      << r.out;
}

// ------------------------------------------------- per-metric thresholds

TEST(ThresholdOverrides, LongestMatchingSubstringWins) {
  const alge::json::Value base =
      alge::json::parse(R"({"x":{"real_time_ns":100.0}})");
  const alge::json::Value cur =
      alge::json::parse(R"({"x":{"real_time_ns":103.0}})");
  // +3%: clean at the 10% default.
  EXPECT_EQ(alge::obs::diff_bench_json(base, cur, 0.10).regressions, 0);
  // A 1% override on "time" catches it...
  EXPECT_EQ(alge::obs::diff_bench_json(base, cur, 0.10, {{"time", 0.01}})
                .regressions,
            1);
  // ...unless the longer "real_time" match loosens it back to 5%.
  EXPECT_EQ(alge::obs::diff_bench_json(base, cur, 0.10,
                                       {{"time", 0.01}, {"real_time", 0.05}})
                .regressions,
            0);
}

TEST(BenchDiffCli, ThresholdOverridesFlagGatesPerMetric) {
  // The sim_regressed pair trips two regressions at the default 10%;
  // loosening exactly those two metric families silences both.
  const CliResult loose =
      run({golden("sim_base.json"), golden("sim_regressed.json"),
           "--thresholds=real_time_ns=0.60,items_per_second=0.60"});
  EXPECT_EQ(loose.rc, 0) << loose.out;
  // Tightening one family while the default stays loose still blocks.
  const CliResult tight =
      run({golden("sim_base.json"), golden("sim_clean.json"),
           "--threshold=0.60", "--thresholds=real_time_ns=0.0000001"});
  EXPECT_EQ(tight.rc, 1) << tight.out;
}

TEST(BenchDiffCli, BadThresholdOverrideIsAUsageError) {
  for (const char* bad :
       {"--thresholds=", "--thresholds=noequal", "--thresholds==0.5",
        "--thresholds=time=notanumber", "--thresholds=time=-1"}) {
    const CliResult r =
        run({golden("sim_base.json"), golden("sim_clean.json"), bad});
    EXPECT_EQ(r.rc, 2) << bad;
  }
}

// Zero baselines can't form a relative change; the diff treats any growth
// from zero as an infinite regression for time-like metrics.
TEST(MetricDirection, ZeroBaseGrowthIsAnInfiniteRegression) {
  const alge::json::Value base = alge::json::parse(R"({"startup_time": 0.0})");
  const alge::json::Value cur = alge::json::parse(R"({"startup_time": 1.0})");
  const alge::obs::BenchDiff d = alge::obs::diff_bench_json(base, cur, 0.10);
  ASSERT_EQ(d.metrics.size(), 1u);
  EXPECT_TRUE(d.metrics[0].regression);
  EXPECT_EQ(d.regressions, 1);
}

// ------------------------------------------- navigator byte-stability

// The committed BENCH_navigator.json must normalize to a byte-stable
// metric listing: the golden pair pins both the metric *set* (names) and
// every value at full round-trip precision. If the normalizer's key
// filtering, naming scheme, or ordering changes — or the snapshot drifts —
// this diff catches it before the CI gate silently starts comparing
// different metrics.
TEST(NavigatorNormalizer, CommittedFileNormalizesByteStably) {
  std::ifstream in(golden("navigator_committed.json"));
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const alge::json::Value doc = alge::json::parse(buf.str());
  std::string normalized;
  for (const alge::obs::Metric& m : alge::obs::normalize_bench_json(doc)) {
    normalized += m.name;
    normalized += ' ';
    char num[64];
    std::snprintf(num, sizeof(num), "%.17g", m.value);
    normalized += num;
    normalized += '\n';
  }
  std::ifstream want_in(golden("navigator_committed.normalized.txt"));
  ASSERT_TRUE(want_in.good());
  std::ostringstream want;
  want << want_in.rdbuf();
  EXPECT_EQ(normalized, want.str());
}

// ------------------------------------------------- transport normalizer

TEST(TransportNormalizer, EmitsModelFieldsSkipsWallClock) {
  const alge::json::Value doc = alge::json::parse(
      R"({"bench":"transport","results":[{"name":"summa.shm","p":4,
          "makespan":324.0,"ledger_messages_total":8.0,
          "ledger_words_total":128.0,"wall_seconds":0.002}]})");
  const std::vector<alge::obs::Metric> m =
      alge::obs::normalize_bench_json(doc);
  auto has = [&](const char* name) {
    for (const alge::obs::Metric& x : m) {
      if (x.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("transport.summa.shm.p"));
  EXPECT_TRUE(has("transport.summa.shm.makespan"));
  EXPECT_TRUE(has("transport.summa.shm.ledger_messages_total"));
  EXPECT_TRUE(has("transport.summa.shm.ledger_words_total"));
  // The only machine-dependent field never compares.
  EXPECT_FALSE(has("transport.summa.shm.wall_seconds"));
  // Makespan gates downward; ledger counts are neutral configuration.
  EXPECT_EQ(alge::obs::metric_direction("transport.summa.shm.makespan"), -1);
  EXPECT_EQ(
      alge::obs::metric_direction("transport.summa.shm.ledger_messages_total"),
      0);
}

}  // namespace
