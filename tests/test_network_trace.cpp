#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::sim {
namespace {

MachineConfig unit_config(int p) {
  MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

// --- Network models ---

TEST(Network, FullyConnectedIsOneHop) {
  FullyConnectedNetwork net;
  EXPECT_EQ(net.hops(0, 5, 8), 1);
  EXPECT_EQ(net.hops(3, 3, 8), 0);
  EXPECT_THROW(net.hops(0, 8, 8), invalid_argument_error);
}

TEST(Network, RingWrapsBothWays) {
  RingNetwork net;
  EXPECT_EQ(net.hops(0, 1, 8), 1);
  EXPECT_EQ(net.hops(0, 7, 8), 1);  // wrap
  EXPECT_EQ(net.hops(0, 4, 8), 4);  // antipode
  EXPECT_EQ(net.hops(2, 6, 8), 4);
}

TEST(Network, Torus3DManhattanWithWrap) {
  Torus3DNetwork net(4, 4, 2);  // 32 ranks, rank = z*16 + y*4 + x
  EXPECT_EQ(net.hops(0, 1, 32), 1);       // +x
  EXPECT_EQ(net.hops(0, 3, 32), 1);       // x wrap
  EXPECT_EQ(net.hops(0, 4, 32), 1);       // +y
  EXPECT_EQ(net.hops(0, 16, 32), 1);      // +z
  EXPECT_EQ(net.hops(0, 2 + 2 * 4 + 16, 32), 2 + 2 + 1);  // mixed
  EXPECT_THROW(net.hops(0, 1, 16), invalid_argument_error);  // wrong p
}

TEST(Network, TorusMatchesGrid3DNeighbours) {
  // The Grid3D rank numbering lands on a (q, q, c) torus so that Cannon
  // shifts and depth broadcasts are 1 hop.
  const topo::Grid3D grid(4, 2);
  const Torus3DNetwork net(4, 4, 2);
  const int p = grid.p();
  const int r = grid.rank_of(1, 2, 0);
  EXPECT_EQ(net.hops(r, grid.rank_of(1, 3, 0), p), 1);  // column shift
  EXPECT_EQ(net.hops(r, grid.rank_of(2, 2, 0), p), 1);  // row shift
  EXPECT_EQ(net.hops(r, grid.rank_of(1, 2, 1), p), 1);  // depth
}

TEST(Network, HopWeightedCountersAndLatency) {
  MachineConfig cfg = unit_config(8);
  cfg.network = std::make_shared<RingNetwork>();
  Machine m(cfg);
  m.run([&](Comm& c) {
    std::vector<double> buf(10, 1.0);
    if (c.rank() == 0) {
      c.send(4, buf);  // 4 hops
    } else if (c.rank() == 4) {
      c.recv(0, buf);
    }
  });
  const auto& c0 = m.rank_counters(0);
  EXPECT_DOUBLE_EQ(c0.words_sent, 10.0);
  EXPECT_DOUBLE_EQ(c0.words_hops, 40.0);
  EXPECT_DOUBLE_EQ(c0.msgs_hops, 4.0);
  // Unit params, wormhole: T = 4 hops * alpha + 10 words * beta.
  EXPECT_DOUBLE_EQ(c0.clock, 4.0 + 10.0);
  // Energy words term uses hop-weighted traffic.
  EXPECT_DOUBLE_EQ(m.energy().breakdown.words, 40.0);
  EXPECT_DOUBLE_EQ(m.energy().breakdown.messages, 4.0);
}

TEST(Network, DefaultNetworkKeepsPlainCounts) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) {
    std::vector<double> buf(10, 1.0);
    if (c.rank() == 0) {
      c.send(1, buf);
    } else {
      c.recv(0, buf);
    }
  });
  EXPECT_DOUBLE_EQ(m.rank_counters(0).words_hops,
                   m.rank_counters(0).words_sent);
  EXPECT_DOUBLE_EQ(m.energy().breakdown.words, 10.0);
}

TEST(Network, CannonTrafficIsNearestNeighbourOnTorus) {
  // The paper's Section-IV claim, measured: on the matching torus, 2.5D
  // matmul's hop-weighted words stay close to its plain words (most traffic
  // is 1 hop), so the flat-link energy model remains valid.
  const int q = 4;
  const int c = 2;
  const int n = 16;
  topo::Grid3D grid(q, c);
  Rng rng(5);
  const auto A = algs::random_matrix(n, n, rng);
  auto run = [&](std::shared_ptr<const NetworkModel> net) {
    MachineConfig cfg = unit_config(grid.p());
    cfg.network = std::move(net);
    Machine m(cfg);
    m.run([&](Comm& comm) {
      const int i = grid.row_of(comm.rank());
      const int j = grid.col_of(comm.rank());
      if (grid.layer_of(comm.rank()) == 0) {
        std::vector<double> a(static_cast<std::size_t>(n / q) * (n / q), 1.0);
        std::vector<double> cb(a.size(), 0.0);
        algs::mm_25d(comm, grid, n, a, a, cb);
      } else {
        algs::mm_25d(comm, grid, n, {}, {}, {});
      }
      (void)i;
      (void)j;
    });
    return m.totals();
  };
  const auto torus = run(std::make_shared<Torus3DNetwork>(q, q, c));
  const auto ring = run(std::make_shared<RingNetwork>());
  // On the matched torus the average hop count stays small...
  EXPECT_LT(torus.words_hops_total, 1.7 * torus.words_total);
  // ...while a 1D ring stretches the same traffic across many hops.
  EXPECT_GT(ring.words_hops_total, 2.5 * ring.words_total);
}

// --- Tracing ---

TEST(TraceTest, DisabledByDefault) {
  Machine m(unit_config(2));
  m.run([&](Comm& c) { c.compute(5.0); });
  EXPECT_TRUE(m.trace().empty());
}

TEST(TraceTest, RecordsComputeSendRecvIdle) {
  MachineConfig cfg = unit_config(2);
  cfg.enable_trace = true;
  Machine m(cfg);
  m.run([&](Comm& c) {
    std::vector<double> buf(4, 1.0);
    if (c.rank() == 0) {
      c.compute(10.0);
      c.send(1, buf);
    } else {
      c.recv(0, buf);  // idles until arrival
    }
  });
  const Trace& tr = m.trace();
  ASSERT_FALSE(tr.empty());
  const auto s0 = tr.summarize(0);
  EXPECT_DOUBLE_EQ(s0.compute_time, 10.0);
  EXPECT_EQ(s0.sends, 1u);
  EXPECT_DOUBLE_EQ(s0.send_time, 1.0 + 4.0);  // alpha + k*beta
  const auto s1 = tr.summarize(1);
  EXPECT_EQ(s1.recvs, 1u);
  EXPECT_DOUBLE_EQ(s1.idle_time, 15.0);  // waited for compute + transfer
}

TEST(TraceTest, EventsConserveMessages) {
  MachineConfig cfg = unit_config(4);
  cfg.enable_trace = true;
  Machine m(cfg);
  m.run([&](Comm& c) {
    std::vector<double> buf(2, 0.0);
    c.allreduce_sum(buf, Group::world(4));
  });
  std::size_t sends = 0;
  std::size_t recvs = 0;
  for (const auto& ev : m.trace().events()) {
    if (ev.kind == TraceEvent::Kind::kSend) ++sends;
    if (ev.kind == TraceEvent::Kind::kRecv) ++recvs;
  }
  EXPECT_EQ(sends, recvs);
  EXPECT_GT(sends, 0u);
}

TEST(TraceTest, IdleMatchesCounter) {
  MachineConfig cfg = unit_config(2);
  cfg.enable_trace = true;
  Machine m(cfg);
  m.run([&](Comm& c) {
    std::vector<double> buf(1, 0.0);
    if (c.rank() == 0) {
      c.compute(100.0);
      c.send(1, buf);
    } else {
      c.recv(0, buf);
    }
  });
  EXPECT_DOUBLE_EQ(m.trace().summarize(1).idle_time,
                   m.rank_counters(1).idle_time);
}

TEST(TraceTest, TimelineRendersAllRanks) {
  MachineConfig cfg = unit_config(3);
  cfg.enable_trace = true;
  Machine m(cfg);
  m.run([&](Comm& c) {
    c.compute(10.0 * (c.rank() + 1));
    c.barrier();
  });
  const std::string chart = m.trace().render_timeline(3, 40);
  EXPECT_NE(chart.find("rank   0"), std::string::npos);
  EXPECT_NE(chart.find("rank   2"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);  // compute shows up
}

TEST(TraceTest, ResetClearsTrace) {
  MachineConfig cfg = unit_config(1);
  cfg.enable_trace = true;
  Machine m(cfg);
  m.run([&](Comm& c) { c.compute(1.0); });
  EXPECT_FALSE(m.trace().empty());
  m.reset();
  EXPECT_TRUE(m.trace().empty());
}

}  // namespace
}  // namespace alge::sim
